package securesum

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"asyncft/internal/core"
	"asyncft/internal/field"
	"asyncft/internal/runtime"
	"asyncft/internal/svss"
	"asyncft/internal/testkit"
	"asyncft/internal/wire"
)

func cfg() core.Config {
	return core.Config{K: 1, Eps: 0.1, InnerCoin: core.InnerCoinLocal}
}

func runSum(c *testkit.Cluster, sess string, inputs map[int]field.Elem, parties []int) map[int]testkit.Result {
	return c.Run(parties, func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return Run(ctx, c.Ctx, env, sess, inputs[env.ID], cfg())
	})
}

func TestAllHonestSum(t *testing.T) {
	for _, n := range []int{4, 7} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := testkit.New(n, (n-1)/3, testkit.WithSeed(int64(n)))
			defer c.Close()
			inputs := map[int]field.Elem{}
			for i := 0; i < n; i++ {
				inputs[i] = field.Elem(10 * (i + 1))
			}
			res := runSum(c, "ss/a", inputs, c.Honest())
			var ref *Result
			for id, r := range res {
				if r.Err != nil {
					t.Fatalf("party %d: %v", id, r.Err)
				}
				got := r.Value.(*Result)
				if ref == nil {
					ref = got
				} else {
					if ref.Sum != got.Sum {
						t.Fatalf("sum disagreement: %v vs %v", ref.Sum, got.Sum)
					}
					if !reflect.DeepEqual(ref.Contributors, got.Contributors) {
						t.Fatalf("set disagreement: %v vs %v", ref.Contributors, got.Contributors)
					}
				}
			}
			// The sum must equal Σ inputs over the agreed contributor set.
			var want field.Elem
			for _, j := range ref.Contributors {
				want = field.Add(want, inputs[j])
			}
			if ref.Sum != want {
				t.Fatalf("sum = %v, want %v over %v", ref.Sum, want, ref.Contributors)
			}
			if len(ref.Contributors) < n-(n-1)/3 {
				t.Fatalf("core set too small: %v", ref.Contributors)
			}
		})
	}
}

func TestSumWithCrashedParty(t *testing.T) {
	c := testkit.New(4, 1, testkit.WithCrashed(3), testkit.WithSeed(2))
	defer c.Close()
	inputs := map[int]field.Elem{0: 1, 1: 2, 2: 4}
	res := runSum(c, "ss/crash", inputs, []int{0, 1, 2})
	var ref *Result
	for id, r := range res {
		if r.Err != nil {
			t.Fatalf("party %d: %v", id, r.Err)
		}
		got := r.Value.(*Result)
		if ref == nil {
			ref = got
		} else if ref.Sum != got.Sum {
			t.Fatalf("disagreement")
		}
	}
	// The crashed party cannot be in the core set.
	for _, j := range ref.Contributors {
		if j == 3 {
			t.Fatalf("crashed party in core set: %v", ref.Contributors)
		}
	}
	if ref.Sum != 7 {
		t.Fatalf("sum = %v, want 7", ref.Sum)
	}
}

func TestIndividualInputsNeverOpened(t *testing.T) {
	// Privacy, structurally: the only reveal messages on the wire belong to
	// the aggregate session, never to individual share sessions.
	c := testkit.New(4, 1, testkit.WithSeed(5))
	defer c.Close()
	// Snoop every delivery via a wrapped dispatch on one node. The Router's
	// deliverLoop keeps invoking this dispatch after runSum returns (helper
	// reconstructions linger under the cluster context), so the sink must
	// stay writable for the node's whole lifetime: a mutex-guarded slice,
	// not a channel the test closes.
	var mu sync.Mutex
	var reveals []string
	orig := c.Nodes[0]
	c.Router.Register(0, func(env wire.Envelope) {
		if env.Type == svss.MsgReveal {
			mu.Lock()
			reveals = append(reveals, env.Session)
			mu.Unlock()
		}
		orig.Dispatch(env)
	})
	inputs := map[int]field.Elem{0: 11, 1: 22, 2: 33, 3: 44}
	res := runSum(c, "ss/priv", inputs, c.Honest())
	for id, r := range res {
		if r.Err != nil {
			t.Fatalf("party %d: %v", id, r.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range reveals {
		if s != "ss/priv/out"+svss.RecSuffix {
			t.Fatalf("individual share revealed on session %q", s)
		}
	}
	if len(reveals) == 0 {
		t.Fatal("snoop saw no aggregate reveals at all")
	}
}

func TestSumFastPathCrossCheck(t *testing.T) {
	// The Domain fast path must not change protocol outputs: the aggregate
	// opened with it disabled is the same exact field sum.
	for _, disable := range []bool{false, true} {
		disable := disable
		t.Run(fmt.Sprintf("noFastPath=%v", disable), func(t *testing.T) {
			c := testkit.New(4, 1, testkit.WithSeed(13))
			defer c.Close()
			cfg := cfg()
			cfg.SVSS = svss.Options{NoDomainFastPath: disable}
			inputs := map[int]field.Elem{0: 100, 1: 200, 2: 300, 3: 400}
			res := c.Run(c.Honest(), func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				return Run(ctx, c.Ctx, env, "ss/xchk", inputs[env.ID], cfg)
			})
			var ref *Result
			for id, r := range res {
				if r.Err != nil {
					t.Fatalf("party %d: %v", id, r.Err)
				}
				got := r.Value.(*Result)
				if ref == nil {
					ref = got
				} else if ref.Sum != got.Sum {
					t.Fatalf("sum disagreement: %v vs %v", ref.Sum, got.Sum)
				}
			}
			var want field.Elem
			for _, j := range ref.Contributors {
				want = field.Add(want, inputs[j])
			}
			if ref.Sum != want {
				t.Fatalf("sum = %v, want exactly %v over %v", ref.Sum, want, ref.Contributors)
			}
		})
	}
}

func TestLyingAggregateRevealCorrected(t *testing.T) {
	// One party reveals a corrupted aggregate row; the RS path at honest
	// parties must still recover the true sum.
	c := testkit.New(4, 1, testkit.WithSeed(7), testkit.WithTimeout(60*time.Second))
	defer c.Close()
	inputs := map[int]field.Elem{0: 5, 1: 6, 2: 7, 3: 8}
	res := c.Run(c.Honest(), func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		if env.ID == 3 {
			// Run the protocol honestly up to the opening, then lie: junk
			// reveal on the aggregate session.
			junk := field.RandomPoly(env.Rand, env.T, field.Random(env.Rand))
			var w wire.Writer
			w.Poly(junk)
			env.SendAll("ss/lie/out"+svss.RecSuffix, svss.MsgReveal, w.Bytes())
			// Still participate in shares + CS so others can proceed.
			r, err := Run(ctx, c.Ctx, env, "ss/lie", inputs[env.ID], cfg())
			return r, err
		}
		return Run(ctx, c.Ctx, env, "ss/lie", inputs[env.ID], cfg())
	})
	sums := map[field.Elem]bool{}
	for _, id := range []int{0, 1, 2} {
		if res[id].Err != nil {
			t.Fatalf("party %d: %v", id, res[id].Err)
		}
		sums[res[id].Value.(*Result).Sum] = true
	}
	if len(sums) != 1 {
		t.Fatalf("honest sums disagree: %v", sums)
	}
}
