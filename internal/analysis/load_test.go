package analysis

import (
	"go/ast"
	"testing"
)

// TestLoadModulePackage exercises the whole load pipeline offline: go list
// -export, export-data importing, and type-checking of a real module
// package including its test variant.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := Load(".", []string{"asyncft/internal/wire"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var base, variant *Package
	for _, p := range pkgs {
		if p.IsTestVariant() {
			variant = p
		} else if p.ImportPath == "asyncft/internal/wire" {
			base = p
		}
	}
	if base == nil {
		t.Fatal("base package asyncft/internal/wire not loaded")
	}
	if base.Types.Scope().Lookup("GetBuf") == nil {
		t.Error("wire.GetBuf not in loaded package scope")
	}
	// Types must resolve through export data: find a call to field.New in
	// wire.go and check its callee's package path.
	found := false
	for _, f := range base.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := CalleeFunc(base.Info, call); IsFunc(fn, "asyncft/internal/field", "New") {
				found = true
			}
			return true
		})
	}
	if !found {
		t.Error("no typed call to field.New found in wire sources")
	}
	if variant == nil {
		t.Fatal("test variant of wire not loaded")
	}
	hasTestFile := false
	for _, f := range variant.GoFiles {
		if len(f) > 8 && f[len(f)-8:] == "_test.go" {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("test variant lists no _test.go files")
	}
}
