// load.go loads typed syntax for module packages without depending on
// golang.org/x/tools/go/packages: it drives `go list -export` for the
// package graph and compiled export data, parses the target packages'
// sources, and type-checks them with a go/importer gc importer that reads
// imports from the export files. Test variants ("p [p.test]") are loaded
// too, so *_test.go files are analyzed against their real types.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	// ForTest is the import path of the package under test for test
	// variants ("p [p.test]" and "p_test [p.test]"), else empty.
	ForTest string
	GoFiles []string // absolute paths, parse order
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// IsTestVariant reports whether this package exists only to host test
// files (its non-test diagnostics duplicate the base package's).
func (p *Package) IsTestVariant() bool { return p.ForTest != "" }

// listPackage mirrors the subset of `go list -json` output the loader
// needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir, a
// directory inside the module), including test variants when tests is
// true. The returned slice contains only module packages, in `go list`
// order; dependencies are consumed as export data only.
func Load(dir string, patterns []string, tests bool) ([]*Package, error) {
	universe, err := goList(dir, true, tests, patterns)
	if err != nil {
		return nil, err
	}
	roots, err := goList(dir, false, tests, patterns)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(roots))
	for _, p := range roots {
		wanted[p.ImportPath] = true
	}

	exports := make(map[string]string, len(universe))
	for _, p := range universe {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	var out []*Package
	for _, lp := range universe {
		if !wanted[lp.ImportPath] || lp.Standard || lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test") {
			continue // dependency, stdlib, or synthesized test main
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(lp, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -json` with or without -deps/-export and decodes
// the JSON stream.
func goList(dir string, deps, tests bool, patterns []string) ([]*listPackage, error) {
	args := []string{"list", "-e", "-json=Dir,ImportPath,Name,ForTest,Export,Standard,GoFiles,ImportMap,Incomplete,Error,DepsErrors"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// typecheck parses and checks one listed package against export data.
func typecheck(lp *listPackage, exports map[string]string) (*Package, error) {
	var files []string
	for _, f := range lp.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(lp.Dir, f)
		}
		files = append(files, f)
	}
	return Check(lp.ImportPath, lp.ForTest, lp.Dir, files, lp.ImportMap, exports)
}

// Check parses the given files and type-checks them as one package,
// resolving imports through importMap (source path → canonical path, may
// be nil) into the export data files of exports (canonical path → file).
// It is the shared back end of Load, the analysistest fixture runner, and
// cmd/asyncftvet's vet-tool mode.
func Check(importPath, forTest, dir string, files []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %v", importPath, err)
		}
		syntax = append(syntax, file)
	}
	imp := &exportImporter{
		gc:        importer.ForCompiler(fset, "gc", lookupIn(exports)),
		importMap: importMap,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		ForTest:    forTest,
		Dir:        dir,
		GoFiles:    files,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// exportImporter maps source import paths through importMap before
// delegating to the gc export-data importer.
type exportImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	return e.gc.Import(path)
}

// lookupIn adapts an export-file map to the go/importer Lookup protocol.
func lookupIn(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}
