package bufpool_test

import (
	"testing"

	"asyncft/internal/analysis/analysistest"
	"asyncft/internal/analysis/bufpool"
)

func TestBufpool(t *testing.T) {
	analysistest.Run(t, bufpool.Analyzer, "testdata/bufpool")
}
