// Fixture for the bufpool analyzer: GetBuf leaks, use-after-PutBuf, and
// retention of UnmarshalFrom-aliased payloads are flagged; the paired
// defer, ownership handoff, and explicit-copy patterns are not.
package bufpool

import "asyncft/internal/wire"

type cache struct {
	last []byte
}

func handle(e wire.Envelope) {}

func badDiscard() {
	wire.GetBuf() // want "result of wire.GetBuf discarded"
}

func badLeak() []byte {
	buf := wire.GetBuf() // want "buffer from wire.GetBuf is neither returned with wire.PutBuf nor handed off"
	*buf = append(*buf, 0xFF)
	return *buf // deref returns the bytes; the pool pointer is dropped
}

func badUseAfterPut(dst []byte) int {
	buf := wire.GetBuf()
	*buf = append(*buf, 1, 2, 3)
	wire.PutBuf(buf)
	return copy(dst, *buf) // want "buf used after wire.PutBuf returned it to the pool"
}

func goodDefer() []byte {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = append(*buf, 1, 2, 3)
	return append([]byte(nil), *buf...)
}

// goodEarlyReturnPut puts the buffer back only on the abort path; the
// fall-through handoff is not a use-after-put (the transport's Send looks
// like this).
func goodEarlyReturnPut(ch chan *[]byte, closed bool) {
	buf := wire.GetBuf()
	if closed {
		wire.PutBuf(buf)
		return
	}
	ch <- buf
}

func goodHandoff(ch chan *[]byte) {
	buf := wire.GetBuf()
	*buf = append(*buf, 7)
	ch <- buf // ownership transferred; receiver calls PutBuf
}

func badRetainPayload(c *cache, data []byte) {
	env, err := wire.UnmarshalFrom(data)
	if err != nil {
		return
	}
	c.last = env.Payload // want "payload from wire.UnmarshalFrom aliases the input buffer"
}

func badRetainEnvelope(m map[int]wire.Envelope, data []byte) {
	env, err := wire.UnmarshalFrom(data)
	if err != nil {
		return
	}
	m[0] = env // want "payload from wire.UnmarshalFrom aliases the input buffer"
}

func badSendAlias(ch chan wire.Envelope, data []byte) {
	env, err := wire.UnmarshalFrom(data)
	if err != nil {
		return
	}
	ch <- env // want "copy it before sending it to another goroutine"
}

func goodCopyThenRetain(c *cache, data []byte) {
	env, err := wire.UnmarshalFrom(data)
	if err != nil {
		return
	}
	c.last = append([]byte(nil), env.Payload...) // explicit copy detaches the alias
	handle(env)                                  // passing onward is the ownership-transfer pattern
}
