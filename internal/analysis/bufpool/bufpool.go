// Package bufpool checks the wire buffer-pool discipline (PR 3's pooled
// zero-copy message plane), where getting it wrong corrupts frames that
// are already on another goroutine's wire:
//
//  1. leak: a buffer from wire.GetBuf must, within its function, either be
//     returned with wire.PutBuf or be handed off (the pointer escapes into
//     a call, channel, struct, slice, or return — ownership transfer, like
//     the transport's per-peer queues);
//  2. use-after-put: once wire.PutBuf(b) runs, any later use of b in the
//     same function touches memory a concurrent GetBuf caller may already
//     own;
//  3. alias retention: the payload of a wire.UnmarshalFrom envelope
//     aliases the input buffer; storing the envelope (or its payload) into
//     a struct field, map, slice element, or channel without an explicit
//     copy retains bytes whose backing array the caller may recycle.
//     Passing the envelope onward as a call argument is the documented
//     ownership-transfer pattern and is not flagged.
//
// The escape analysis is deliberately shallow (per function, syntactic):
// it accepts any visible handoff and so stays quiet on the transport's
// real pooling code while still catching the drop-on-floor, double-use and
// stash-the-alias shapes that were previously found only by -race runs.
package bufpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"asyncft/internal/analysis"
)

const wirePkg = "asyncft/internal/wire"

// Analyzer is the bufpool analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bufpool",
	Doc: "checks wire.GetBuf/PutBuf pairing and flags retention of pooled or " +
		"UnmarshalFrom-aliased bytes past the handler scope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.BasePath(pass.Pkg) == wirePkg {
		return nil // the pool's own implementation and tests
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	checkLeaks(pass, body)
	checkUseAfterPut(pass, body)
	checkAliasRetention(pass, body)
}

// --- rule 1: GetBuf must be put back or handed off ---

func checkLeaks(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isWireCall(pass.TypesInfo, call, "GetBuf") {
				pass.Report(call.Pos(), "result of wire.GetBuf discarded; the buffer never returns to the pool")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isWireCall(pass.TypesInfo, call, "GetBuf") || i >= len(n.Lhs) {
					continue
				}
				obj := assignedVar(pass.TypesInfo, n.Lhs[i])
				if obj == nil {
					continue // assigned through a field/index: already escaped
				}
				if !putOrEscapes(pass, body, obj) {
					pass.Reportf(call.Pos(),
						"buffer from wire.GetBuf is neither returned with wire.PutBuf nor handed off; "+
							"it never goes back to the pool (pair it with PutBuf or transfer ownership explicitly)")
				}
			}
		}
		return true
	})
}

// putOrEscapes reports whether obj reaches wire.PutBuf or escapes the
// function (pointer passed to a call, sent, stored, returned).
func putOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj *types.Var) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesDirectly(pass.TypesInfo, arg, obj) {
					ok = true // PutBuf or ownership handoff — both discharge the obligation
				}
			}
		case *ast.SendStmt:
			if usesDirectly(pass.TypesInfo, n.Value, obj) {
				ok = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesDirectly(pass.TypesInfo, r, obj) {
					ok = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					elt = kv.Value
				}
				if usesDirectly(pass.TypesInfo, elt, obj) {
					ok = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !usesDirectly(pass.TypesInfo, rhs, obj) {
					continue
				}
				if i < len(n.Lhs) {
					switch n.Lhs[i].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						ok = true // stored into a structure: escaped
					}
				}
			}
		}
		return !ok
	})
	return ok
}

// usesDirectly reports whether e is the identifier of obj (not a deref of
// it: *buf passes the slice value, which transfers bytes but not pool
// ownership).
func usesDirectly(info *types.Info, e ast.Expr, obj *types.Var) bool {
	id, ok := analysis.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// --- rule 2: no use after PutBuf ---

func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect PutBuf(v) positions per variable, then earliest reassignment
	// after each put; a use in between is a use of pooled memory.
	type window struct {
		obj      *types.Var
		from, to token.Pos // (putEnd, nextReassign]
	}
	var windows []window
	deferred := make(map[*ast.CallExpr]bool) // defer wire.PutBuf(b) runs last: no window
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] || !isWireCall(pass.TypesInfo, call, "PutBuf") || len(call.Args) != 1 {
			return true
		}
		id, ok := analysis.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		// Flow-insensitive approximation: the window closes at the end of
		// the innermost block containing the put, so a PutBuf inside an
		// early-return branch (`if closed { PutBuf(b); return }`) does not
		// taint the fall-through path.
		w := window{obj: obj, from: call.End(), to: enclosingBlock(body, call).End()}
		ast.Inspect(body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && as.Pos() > w.from && as.Pos() < w.to {
					if pass.TypesInfo.Uses[lid] == obj || pass.TypesInfo.Defs[lid] == obj {
						w.to = as.Pos()
					}
				}
			}
			return true
		})
		windows = append(windows, w)
		return true
	})
	if len(windows) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for _, w := range windows {
			if obj == w.obj && id.Pos() > w.from && id.Pos() < w.to {
				pass.Reportf(id.Pos(),
					"%s used after wire.PutBuf returned it to the pool; a concurrent GetBuf caller may already own its bytes",
					id.Name)
				return true
			}
		}
		return true
	})
}

// enclosingBlock returns the innermost *ast.BlockStmt within body that
// contains n (body itself if none is tighter).
func enclosingBlock(body *ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	best := body
	ast.Inspect(body, func(m ast.Node) bool {
		b, ok := m.(*ast.BlockStmt)
		if ok && b.Pos() <= n.Pos() && n.End() <= b.End() && b.Pos() >= best.Pos() {
			best = b
		}
		return true
	})
	return best
}

// --- rule 3: UnmarshalFrom aliases must not be retained ---

func checkAliasRetention(pass *analysis.Pass, body *ast.BlockStmt) {
	// Envelope variables produced by wire.UnmarshalFrom.
	aliased := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := analysis.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isWireCall(pass.TypesInfo, call, "UnmarshalFrom") {
			return true
		}
		if obj := assignedVar(pass.TypesInfo, as.Lhs[0]); obj != nil {
			aliased[obj] = true
		}
		return true
	})
	if len(aliased) == 0 {
		return
	}
	// refersToAlias: expression is env or env.Payload (not wrapped in a
	// call, which we treat as a transforming copy: append, string, ...).
	refersToAlias := func(e ast.Expr) bool {
		e = analysis.Unparen(e)
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
			e = analysis.Unparen(sel.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		return ok && aliased[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !refersToAlias(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					pass.Reportf(rhs.Pos(),
						"payload from wire.UnmarshalFrom aliases the input buffer; copy it "+
							"(wire.Unmarshal, or append([]byte(nil), p...)) before storing it beyond the handler scope")
				}
			}
		case *ast.SendStmt:
			if refersToAlias(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"payload from wire.UnmarshalFrom aliases the input buffer; copy it before sending it to another goroutine")
			}
		}
		return true
	})
}

// --- shared helpers ---

func isWireCall(info *types.Info, call *ast.CallExpr, name string) bool {
	return analysis.IsFunc(analysis.CalleeFunc(info, call), wirePkg, name)
}

func assignedVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := analysis.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := info.Uses[id].(*types.Var)
	return obj
}
