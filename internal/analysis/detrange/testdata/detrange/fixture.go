// Fixture for the detrange analyzer: map ranges feeding canonical-bytes
// sinks are flagged; the collect-sort-iterate idiom and byte-free map
// loops are not.
package detrange

import (
	"crypto/sha256"
	"sort"

	"asyncft/internal/wire"
)

// EncodeLedger is a module Encode* sink by name.
func EncodeLedger(w *wire.Writer, k string, v uint64) {
	w.Uint(v)
}

func badWriter(m map[string]uint64) []byte {
	var w wire.Writer
	for _, v := range m { // want "map iteration feeds canonical-bytes sink wire.Writer.Uint"
		w.Uint(v)
	}
	return w.Bytes()
}

func badDigest(m map[int][]byte) [32]byte {
	var d [32]byte
	for _, p := range m { // want "map iteration feeds canonical-bytes sink crypto/sha256.Sum256"
		d = sha256.Sum256(append(d[:], p...))
	}
	return d
}

func badEncodeFunc(m map[string]uint64) []byte {
	var w wire.Writer
	for k, v := range m { // want "map iteration feeds canonical-bytes sink detrange.EncodeLedger"
		EncodeLedger(&w, k, v)
	}
	return w.Bytes()
}

// goodSorted is the canonical pattern: the map range only collects keys,
// the byte-emitting loop ranges over the sorted slice.
func goodSorted(m map[string]uint64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var w wire.Writer
	for _, k := range keys {
		w.Uint(m[k])
	}
	return w.Bytes()
}

// goodPerIteration declares the writer inside the loop: each iteration
// encodes one self-contained message, so iteration order never reaches
// the bytes (the adversary's per-victim sends look like this).
func goodPerIteration(m map[int]uint64, send func(int, []byte)) {
	for to, v := range m {
		var w wire.Writer
		w.Uint(v)
		send(to, w.Bytes())
	}
}

// goodCount never reaches a byte sink.
func goodCount(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}
