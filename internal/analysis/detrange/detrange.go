// Package detrange flags `range` statements over maps whose loop body
// reaches a canonical-bytes sink: wire.Writer methods, wire envelope
// encoding, SHA-256 digests, or any module Encode*/Digest/Marshal
// function. Go map iteration order is deliberately randomized, so bytes
// produced inside such a loop differ between parties and between runs —
// the exact hazard behind the stack's bit-identical-ledger guarantee
// (acs.Encode/acs.Digest must yield the same bytes at every nonfaulty
// party).
//
// The canonical safe pattern is untouched by design: collect the keys,
// sort them, and range over the sorted slice (see acs.AgreeLedgers). Only
// a map range whose own body emits canonical bytes is flagged.
package detrange

import (
	"go/ast"
	"go/types"
	"strings"

	"asyncft/internal/analysis"
)

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration that feeds canonical encodings or digests; " +
		"map order is nondeterministic, so such bytes break cross-party bit-identity",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := typeutilMap(pass.TypeOf(rng.X)); !isMap {
				return true
			}
			if sink := findSink(pass, rng.Body); sink != "" {
				pass.Reportf(rng.Pos(),
					"map iteration feeds canonical-bytes sink %s; map order is nondeterministic — collect the keys, sort, and range over the slice",
					sink)
			}
			return true
		})
	}
	return nil
}

// typeutilMap unwraps named types to find a map.
func typeutilMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

// findSink returns a description of the first order-sensitive call inside
// body, or "".
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		s := classify(fn)
		if s != "" && receiverLocalToBody(pass, call, body) {
			// The accumulator (writer, hasher) is created inside the loop
			// body: each iteration encodes independently, so iteration
			// order never reaches the bytes.
			s = ""
		}
		sink = s
		return sink == ""
	})
	return sink
}

// receiverLocalToBody reports whether call is a method call whose receiver
// chain roots at a variable declared inside body.
func receiverLocalToBody(pass *analysis.Pass, call *ast.CallExpr, body *ast.BlockStmt) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := analysis.Unparen(sel.X)
	for {
		switch e := recv.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
		case *ast.SelectorExpr:
			recv = analysis.Unparen(e.X)
		case *ast.CallExpr: // chained builder: w.Uint(x).Elem(y)
			if inner, ok := analysis.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				recv = analysis.Unparen(inner.X)
				continue
			}
			return false
		case *ast.UnaryExpr:
			recv = analysis.Unparen(e.X)
		case *ast.StarExpr:
			recv = analysis.Unparen(e.X)
		default:
			return false
		}
	}
}

// classify reports why fn is order-sensitive ("" if it is not).
func classify(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		// Anything written through a wire.Writer becomes protocol bytes.
		if analysis.IsNamedType(recv, "asyncft/internal/wire", "Writer") {
			return "wire.Writer." + name
		}
		// hash.Hash.Write/Sum: digest input order is the digest.
		if analysis.IsNamedType(recv, "hash", "Hash") && (name == "Write" || name == "Sum") {
			return "hash.Hash." + name
		}
	}
	if fn.Pkg() == nil {
		return ""
	}
	switch path := fn.Pkg().Path(); {
	case path == "asyncft/internal/wire" && (name == "AppendEnvelope" || name == "Marshal"):
		return "wire." + name
	case strings.HasPrefix(path, "crypto/sha") && strings.HasPrefix(name, "Sum"):
		return path + "." + name
	case (strings.HasPrefix(path, "asyncft") || strings.HasPrefix(path, "fixture")) &&
		(strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal") || name == "Digest"):
		return shortPkg(path) + "." + name
	}
	return ""
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
