package detrange_test

import (
	"testing"

	"asyncft/internal/analysis/analysistest"
	"asyncft/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, detrange.Analyzer, "testdata/detrange")
}
