package ctxleak_test

import (
	"testing"

	"asyncft/internal/analysis/analysistest"
	"asyncft/internal/analysis/ctxleak"
)

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, ctxleak.Analyzer, "testdata/ctxleak")
}
