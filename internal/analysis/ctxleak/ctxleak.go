// Package ctxleak flags goroutines in protocol packages whose lifetime is
// visibly unbounded: a `go` statement that neither passes a context or
// channel to its callee nor (for func literals and same-package callees,
// whose bodies are inspected) observes a context or receives from a
// channel. Every protocol helper must die when its context is cancelled or
// a close signal arrives — the PR 5 serve-lifetime bug class, where a
// pull-serving helper outlived (or died before) the window peers depended
// on.
//
// The check is one level deep and intentionally syntactic about the
// signal: a context.Context value used anywhere in the body, a channel
// receive, a select with a receive case, ranging over a channel, or
// handing a channel to a callee all count as observing a shutdown signal.
// A goroutine whose lifetime is bounded by other means (closing a net.Conn
// or listener, a sync.WaitGroup drain) is a documented handoff: suppress
// it with //asyncftvet:ignore ctxleak <why the lifetime is bounded>.
package ctxleak

import (
	"go/ast"
	"go/types"
	"strings"

	"asyncft/internal/analysis"
)

// protocolPkgs are the packages whose goroutines must observe a signal.
var protocolPkgs = map[string]bool{
	"asyncft/internal/acs":       true,
	"asyncft/internal/ba":        true,
	"asyncft/internal/rbc":       true,
	"asyncft/internal/mpc":       true,
	"asyncft/internal/statesync": true,
	"asyncft/internal/transport": true,
	"asyncft/internal/batch":     true,
	"asyncft/internal/svss":      true,
	"asyncft/internal/reconfig":  true,
	// The observability plane runs HTTP-server goroutines next to the
	// protocol stack; its serve loops must be bounded the same way (or
	// document the listener-close handoff).
	"asyncft/internal/obs": true,
}

// Analyzer is the ctxleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc: "flags goroutines in protocol packages that observe no context or close signal; " +
		"unbounded helpers are the serve-lifetime bug class",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := analysis.BasePath(pass.Pkg)
	if !protocolPkgs[path] && !strings.HasPrefix(path, "fixture/") {
		return nil
	}
	decls := funcDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goObservesSignal(pass, decls, g.Call) {
				pass.Report(g.Pos(),
					"goroutine observes no ctx.Done()/close signal (no context or channel in args or body); "+
						"bound its lifetime or document the handoff with //asyncftvet:ignore ctxleak <reason>")
			}
			return true
		})
	}
	return nil
}

// funcDecls maps this package's function objects to their declarations,
// so named callees can be inspected one level deep.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

func goObservesSignal(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	// A context or channel handed to the goroutine counts: the callee was
	// given the means to stop.
	for _, arg := range call.Args {
		if isSignalType(pass.TypeOf(arg)) {
			return true
		}
	}
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyObserves(pass, fun.Body)
	default:
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				return bodyObserves(pass, fd.Body)
			}
		}
	}
	return false
}

// bodyObserves reports whether the body visibly observes a shutdown
// signal.
func bodyObserves(pass *analysis.Pass, body ast.Node) bool {
	observed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if observed {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				observed = true // channel receive
			}
		case *ast.RangeStmt:
			if isChan(pass.TypeOf(n.X)) {
				observed = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isSignalType(pass.TypeOf(arg)) {
					observed = true // signal handed onward (Recv(ctx, ...), wait(done))
				}
			}
		case ast.Expr:
			if analysis.IsContextType(pass.TypeOf(n)) {
				observed = true
			}
		}
		return !observed
	})
	return observed
}

func isSignalType(t types.Type) bool {
	return analysis.IsContextType(t) || isChan(t)
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
