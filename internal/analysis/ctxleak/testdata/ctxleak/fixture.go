// Fixture for the ctxleak analyzer: goroutines in protocol packages
// (fixture/ paths count as protocol for tests) must observe a context or
// channel signal, directly or one call level deep.
package ctxleak

import "context"

type server struct {
	in   chan int
	done chan struct{}
}

func tick() {}

func badLoop() {
	go func() { // want "goroutine observes no ctx.Done\\(\\)/close signal"
		for {
			tick()
		}
	}()
}

func (s *server) spin() {
	for {
		tick()
	}
}

func badNamed(s *server) {
	go s.spin() // want "goroutine observes no ctx.Done\\(\\)/close signal"
}

func goodCtxArg(ctx context.Context) {
	go run(ctx) // callee was handed the means to stop
}

func run(ctx context.Context) {
	<-ctx.Done()
}

func goodSelect(ctx context.Context, s *server) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.in:
				_ = v
			}
		}
	}()
}

// pump ranges over a channel: bounded by close(s.in).
func (s *server) pump() {
	for v := range s.in {
		_ = v
	}
}

func goodNamed(s *server) {
	go s.pump()
}

func (s *server) drain() {
	for {
		tick()
	}
}

func suppressed(s *server) {
	//asyncftvet:ignore ctxleak lifetime bounded by the test harness closing the conn
	go s.drain()
}
