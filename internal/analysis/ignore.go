// ignore.go implements the //asyncftvet:ignore suppression directive.
//
// Syntax (a line comment, either trailing the flagged line or on its own
// line immediately above it):
//
//	//asyncftvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory: an undocumented suppression is itself reported
// as a diagnostic. Suppressed findings are not dropped silently — the
// driver keeps them (Diagnostic.Ignored) and cmd/asyncftvet reports a
// per-analyzer suppression count, so CI output always shows how many
// findings are being waved through and why. A directive that suppresses
// nothing for an analyzer that actually ran is reported as stale.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the directive marker, as the comment text appears after
// "//".
const IgnorePrefix = "asyncftvet:ignore"

// directive is one parsed //asyncftvet:ignore comment.
type directive struct {
	pos       token.Position // of the comment
	line      int            // line the directive applies to (its own line, or the next for standalone comments)
	analyzers []string
	reason    string
	used      bool
}

// parseDirectives extracts the ignore directives of one parsed file.
// Malformed directives (no analyzer list or empty reason) are returned as
// diagnostics under the pseudo-analyzer name "ignore".
func parseDirectives(fset *token.FileSet, file *ast.File) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var bad []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			text, ok = strings.CutPrefix(text, IgnorePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{
					Analyzer: "ignore",
					Pos:      pos,
					Message:  "malformed //asyncftvet:ignore directive: want \"//asyncftvet:ignore <analyzer>[,...] <reason>\" with a non-empty reason",
				})
				continue
			}
			d := &directive{
				pos:       pos,
				line:      pos.Line,
				analyzers: strings.Split(fields[0], ","),
				reason:    strings.Join(fields[1:], " "),
			}
			// A directive on a line of its own guards the next line.
			if standsAlone(fset, file, c) {
				d.line = pos.Line + 1
			}
			dirs = append(dirs, d)
		}
	}
	return dirs, bad
}

// standsAlone reports whether comment c is the only thing on its line
// (i.e. no AST node starts or ends on that line before the comment).
func standsAlone(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		// Any node spanning the comment's line that isn't a comment means
		// the directive trails code.
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if start > line {
			return false
		}
		switch n.(type) {
		case *ast.File:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false // directives may be doc comments; only code counts
		}
		if start == line || end == line {
			alone = false
			return false
		}
		return end >= line
	})
	return alone
}

func (d *directive) matches(analyzer string, line int) bool {
	if d.line != line {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// applyIgnores marks diagnostics suppressed by directives and appends
// diagnostics for malformed or stale directives. ran is the set of
// analyzer names that actually ran (stale detection is limited to those).
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	byFile := make(map[string][]*directive)
	for _, f := range files {
		dirs, bad := parseDirectives(fset, f)
		diags = append(diags, bad...)
		if len(dirs) > 0 {
			byFile[fset.Position(f.Pos()).Filename] = dirs
		}
	}
	for i := range diags {
		if diags[i].Analyzer == "ignore" {
			continue
		}
		for _, d := range byFile[diags[i].Pos.Filename] {
			if d.matches(diags[i].Analyzer, diags[i].Pos.Line) {
				d.used = true
				diags[i].Ignored = true
				diags[i].IgnoreReason = d.reason
				break
			}
		}
	}
	for _, dirs := range byFile {
		for _, d := range dirs {
			if d.used {
				continue
			}
			stale := true
			for _, a := range d.analyzers {
				if a == "all" || !ran[a] {
					stale = false // can't judge without running everything named
					break
				}
			}
			if stale {
				diags = append(diags, Diagnostic{
					Analyzer: "ignore",
					Pos:      d.pos,
					Message:  "stale //asyncftvet:ignore directive: " + strings.Join(d.analyzers, ",") + " reported nothing here — delete it",
				})
			}
		}
	}
	return diags
}
