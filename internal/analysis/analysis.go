// Package analysis is a dependency-free mirror of the core of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass/Diagnostic
// surface to write repo-specific static checkers, plus a package loader
// (load.go) that drives the go tool for export data and a suppression
// mechanism (ignore.go) for documented false positives.
//
// The repository pins zero external modules, so the real x/tools framework
// is deliberately not a dependency. The API mirrors it closely enough that
// an analyzer written here is a mechanical port away from a stock
// go/analysis analyzer (swap the import, wrap Run's signature), and
// cmd/asyncftvet speaks the cmd/go vet-tool protocol exactly like
// x/tools' unitchecker, so `go vet -vettool=` drives the suite unchanged.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //asyncftvet:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description: the invariant the analyzer
	// encodes and what a finding means.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Ignored is set by the driver when an //asyncftvet:ignore directive
	// suppressed the finding (the diagnostic is retained for counting).
	Ignored bool
	// IgnoreReason is the directive's reason string when Ignored.
	IgnoreReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Report emits a finding.
func (p *Pass) Report(pos token.Pos, message string) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: p.Fset.Position(pos), Message: message})
}

// Reportf emits a formatted finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for calls through function
// values, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Unparen strips parentheses. (ast.Unparen needs go1.22; the module
// supports go1.21.)
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// IsFunc reports whether fn is the named function of the named package.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsNamedType reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool { return IsNamedType(t, "context", "Context") }

// BasePath returns a package's import path with any test-variant suffix
// ("p [p.test]") stripped, so path-gated analyzers treat a package and its
// test variant alike.
func BasePath(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}
