// Fixture for the fieldops analyzer: raw arithmetic and ordering on
// field.Elem is flagged outside internal/field; equality and the
// field.Add/Sub/Mul/Div API are not.
package fieldops

import "asyncft/internal/field"

func badArith(a, b field.Elem) field.Elem {
	c := a + b // want "raw \\+ on field.Elem outside internal/field skips modular reduction; use field.Add"
	c = c * b  // want "raw \\* on field.Elem outside internal/field skips modular reduction; use field.Mul"
	return c
}

func badCompare(a, b field.Elem) bool {
	return a < b // want "raw < on field.Elem outside internal/field imposes an integer order"
}

func badOpAssign(a, b field.Elem) field.Elem {
	a -= b // want "raw -= on field.Elem outside internal/field skips modular reduction; use field.Sub"
	a++    // want "raw \\+\\+ on field.Elem outside internal/field skips modular reduction; use field.Add"
	return a
}

func good(a, b field.Elem) field.Elem {
	if a == b { // equality on canonical residues is fine
		return field.Add(a, b)
	}
	if a.Uint64() < b.Uint64() { // explicit integer comparison is fine
		return field.Sub(b, a)
	}
	return field.Mul(a, field.Inv(b))
}

// goodUints: untyped/uint64 arithmetic nearby must not be caught.
func goodUints(x, y uint64) uint64 {
	return x + y*3
}
