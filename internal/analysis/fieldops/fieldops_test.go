package fieldops_test

import (
	"testing"

	"asyncft/internal/analysis/analysistest"
	"asyncft/internal/analysis/fieldops"
)

func TestFieldops(t *testing.T) {
	analysistest.Run(t, fieldops.Analyzer, "testdata/fieldops")
}
