// Package fieldops flags raw arithmetic and ordering comparisons on
// field.Elem values outside internal/field. Elem is a uint64 carrying a
// canonical residue mod p; `a + b` compiles but silently skips the modular
// reduction, and `a < b` imposes an integer order that is meaningless in
// the field — both are latent correctness bugs everywhere shares,
// polynomial evaluations, or reconstruction coefficients flow. All
// arithmetic must go through field.Add/Sub/Mul/Div (and friends);
// equality (==, !=) is allowed because elements are kept reduced.
package fieldops

import (
	"go/ast"
	"go/token"
	"strings"

	"asyncft/internal/analysis"
)

// fieldPkg is the only package allowed to touch Elem representation.
const fieldPkg = "asyncft/internal/field"

// Analyzer is the fieldops analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "fieldops",
	Doc: "flags raw + - * / % and ordering comparisons on field.Elem outside internal/field; " +
		"raw operators skip modular reduction",
	Run: run,
}

var flagged = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true,
}

func run(pass *analysis.Pass) error {
	if analysis.BasePath(pass.Pkg) == fieldPkg {
		return nil // the field implementation owns the representation
	}
	isElem := func(e ast.Expr) bool {
		return analysis.IsNamedType(pass.TypeOf(e), fieldPkg, "Elem")
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if flagged[n.Op] && (isElem(n.X) || isElem(n.Y)) {
					pass.Reportf(n.OpPos, "raw %s on field.Elem outside internal/field %s; use field.%s",
						n.Op, consequence(n.Op), suggestion(n.Op))
				}
			case *ast.AssignStmt:
				if flagged[n.Tok] && len(n.Lhs) == 1 && isElem(n.Lhs[0]) {
					pass.Reportf(n.TokPos, "raw %s on field.Elem outside internal/field skips modular reduction; use field.%s",
						n.Tok, suggestion(n.Tok))
				}
			case *ast.IncDecStmt:
				if isElem(n.X) {
					pass.Reportf(n.TokPos, "raw %s on field.Elem outside internal/field skips modular reduction; use field.Add", n.Tok)
				}
			}
			return true
		})
	}
	return nil
}

func consequence(op token.Token) string {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return "imposes an integer order that is meaningless in the field"
	default:
		return "skips modular reduction"
	}
}

func suggestion(op token.Token) string {
	s := op.String()
	if strings.HasSuffix(s, "=") && s != "<=" && s != ">=" {
		s = strings.TrimSuffix(s, "=")
	}
	switch s {
	case "+":
		return "Add"
	case "-":
		return "Sub"
	case "*":
		return "Mul"
	case "/":
		return "Div"
	case "%":
		return "Add/Sub/Mul (residues are already reduced)"
	default:
		return "Elem.Uint64 and compare integers explicitly if an order is really intended"
	}
}
