// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-repo framework.
//
// A fixture is a directory of .go files forming one package. Fixtures may
// import real module packages (asyncft/internal/wire, ...): the runner
// resolves imports through export data produced by one `go list -export`
// sweep of the module, so analyzers are tested against the genuine types
// they match on in production. Expectations:
//
//	bad()  // want "regexp matching the diagnostic"
//	bad2() // want "first" "second"       (two diagnostics on one line)
//
// Every active (non-suppressed) diagnostic must be matched by a want on
// its line and vice versa. //asyncftvet:ignore directives are honored,
// so fixtures can also cover the suppression mechanism itself.
package analysistest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"asyncft/internal/analysis"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// moduleExports runs one `go list -export -deps ./...` over the module and
// caches import path → export data file for the whole dependency graph.
func moduleExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-f", `{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}`, "./...", "std")
		cmd.Dir = root
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				err = fmt.Errorf("%v\n%s", err, ee.Stderr)
			}
			exportsErr = fmt.Errorf("go list -export: %v", err)
			return
		}
		exports = make(map[string]string)
		for _, line := range strings.Split(string(out), "\n") {
			if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
				exports[path] = file
			}
		}
	})
	return exports, exportsErr
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// Run analyzes the fixture package in dir and reports mismatches between
// diagnostics and want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	exp, err := moduleExports()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := analysis.Check("fixture/"+filepath.Base(dir), "", dir, files, nil, exp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	wants, err := parseWants(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Active() {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type posKey struct {
	file string
	line int
}

type want struct {
	pos     string
	re      *regexp.Regexp
	matched bool
}

type wantSet map[posKey][]*want

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts want expectations by scanning the raw source lines
// (comments inside fixtures stay trivially findable this way).
func parseWants(files []string) (wantSet, error) {
	set := make(wantSet)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			key := posKey{f, i + 1}
			for rest != "" {
				if rest[0] != '"' {
					return nil, fmt.Errorf("%s:%d: malformed want: expected quoted regexp at %q", f, i+1, rest)
				}
				end := strings.Index(rest[1:], `"`)
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: malformed want: unterminated string", f, i+1)
				}
				lit := rest[:end+2]
				rest = strings.TrimSpace(rest[end+2:])
				s, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: malformed want %s: %v", f, i+1, lit, err)
				}
				re, err := regexp.Compile(s)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", f, i+1, err)
				}
				set[key] = append(set[key], &want{pos: fmt.Sprintf("%s:%d", f, i+1), re: re})
			}
		}
	}
	return set, nil
}

func (s wantSet) match(key posKey, message string) bool {
	for _, w := range s[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (s wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, ws := range s {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}
