// run.go applies analyzers to loaded packages and post-processes the
// diagnostics: test-variant deduplication, ignore-directive filtering, and
// per-analyzer suppression counts.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	// Diagnostics holds every finding in file/line order, including
	// suppressed ones (Ignored=true).
	Diagnostics []Diagnostic
}

// Active returns the non-suppressed diagnostics.
func (r *Result) Active() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Ignored {
			out = append(out, d)
		}
	}
	return out
}

// IgnoreCounts returns analyzer → number of suppressed findings.
func (r *Result) IgnoreCounts() map[string]int {
	counts := make(map[string]int)
	for _, d := range r.Diagnostics {
		if d.Ignored {
			counts[d.Analyzer]++
		}
	}
	return counts
}

// Summary renders the suppression counts for CI logs ("" when nothing was
// suppressed).
func (r *Result) Summary() string {
	counts := r.IgnoreCounts()
	if len(counts) == 0 {
		return ""
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, counts[name])
	}
	return "suppressed findings: " + strings.Join(parts, " ")
}

// Run applies every analyzer to every package. Analyzer errors abort the
// run; diagnostics (including from malformed/stale ignore directives) are
// collected in the result.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		diags = applyIgnores(pkg.Fset, pkg.Files, diags, ran)
		// A test variant re-checks the base package's files; keep only
		// what the base run cannot see (findings in _test.go files).
		if pkg.IsTestVariant() {
			kept := diags[:0]
			for _, d := range diags {
				if strings.HasSuffix(d.Pos.Filename, "_test.go") {
					kept = append(kept, d)
				}
			}
			diags = kept
		}
		all = append(all, diags...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return &Result{Diagnostics: all}, nil
}
