// Package suite lists the asyncftvet analyzers. It exists apart from
// package analysis so the framework never imports its own analyzers
// (fixtures and future analyzers would otherwise cycle).
package suite

import (
	"asyncft/internal/analysis"
	"asyncft/internal/analysis/bufpool"
	"asyncft/internal/analysis/ctxleak"
	"asyncft/internal/analysis/detrange"
	"asyncft/internal/analysis/fieldops"
	"asyncft/internal/analysis/sessionfmt"
)

// All is the asyncftvet suite, in report order.
var All = []*analysis.Analyzer{
	bufpool.Analyzer,
	ctxleak.Analyzer,
	detrange.Analyzer,
	fieldops.Analyzer,
	sessionfmt.Analyzer,
}
