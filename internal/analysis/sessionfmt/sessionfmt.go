// Package sessionfmt flags session strings built with ad-hoc
// fmt.Sprintf/Sprint instead of the canonical runtime.SubSession helper
// (asyncft.SubSession at the public API). Sessions are the wire's routing
// namespace: every protocol instance owns a hierarchical session ID, and
// two instances whose ad-hoc formats collide silently consume each other's
// messages — a cross-protocol replay/collision surface that has to be
// killed at the constructor, not audited per call site. SubSession joins
// parts with a single canonical separator, so derived sessions are
// collision-free by construction.
//
// A "session sink" is any string parameter named `session` or any struct
// field named `Session`. An argument is flagged when it is a direct
// fmt.Sprintf/Sprint/Sprintln call, or a local variable whose defining
// assignment is one.
//
// The same taint machinery guards metric label values: the With methods of
// the obs package's vec types are label sinks. A Sprintf-derived label
// value means unbounded series cardinality (every distinct string mints a
// new timeseries) and defeats With's resolve-once-and-cache contract —
// label vocabularies must be small and fixed, with WithIndex for integer
// ids.
package sessionfmt

import (
	"go/ast"
	"go/types"

	"asyncft/internal/analysis"
)

// Analyzer is the sessionfmt analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sessionfmt",
	Doc: "flags session strings derived with fmt.Sprintf instead of runtime.SubSession; " +
		"ad-hoc formats are a session-collision/replay surface",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.BasePath(pass.Pkg) == "asyncft/internal/runtime" {
		return nil // the canonical helper's home
	}
	sprintfAssigns := collectSprintfVars(pass)
	reportSession := func(arg ast.Expr, what string) {
		if what != "" {
			what += " "
		}
		pass.Reportf(arg.Pos(),
			"session string %sbuilt with ad-hoc fmt.Sprintf; derive it with runtime.SubSession "+
				"(asyncft.SubSession on the public API) so sessions stay canonical and collision-free", what)
	}
	reportLabel := func(arg ast.Expr, what string) {
		if what != "" {
			what += " "
		}
		pass.Reportf(arg.Pos(),
			"metric label value %sbuilt with fmt.Sprintf; label vocabularies must be small and "+
				"fixed (use WithIndex for integer ids) — formatted labels mint unbounded series", what)
	}
	check := func(arg ast.Expr, report func(ast.Expr, string)) {
		switch arg := analysis.Unparen(arg).(type) {
		case *ast.CallExpr:
			if isSprintf(pass.TypesInfo, arg) {
				report(arg, "")
			}
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[arg].(*types.Var); ok && sprintfAssigns[obj] {
				report(arg, arg.Name)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := analysis.CalleeFunc(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				if isObsLabelSink(fn) && len(n.Args) == 1 {
					check(n.Args[0], reportLabel)
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					if p := paramAt(sig, i); p != nil && p.Name() == "session" && isString(p.Type()) {
						check(arg, reportSession)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Session" {
						if f, ok := pass.TypesInfo.Uses[key].(*types.Var); ok && isString(f.Type()) {
							check(kv.Value, reportSession)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// collectSprintfVars finds local variables whose defining assignment (or
// any assignment — one tainted write taints the variable) is a
// fmt.Sprintf-family call.
func collectSprintfVars(pass *analysis.Pass) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isSprintf(pass.TypesInfo, call) {
			return
		}
		obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			obj, ok = pass.TypesInfo.Uses[id].(*types.Var)
		}
		if ok && obj != nil {
			tainted[obj] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						mark(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						mark(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return tainted
}

// isObsLabelSink reports whether fn is a With method on one of the obs
// package's vec types (CounterVec.With, GaugeVec.With) — the only places a
// label value string enters the registry.
func isObsLabelSink(fn *types.Func) bool {
	if fn == nil || fn.Name() != "With" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "asyncft/internal/obs"
}

func isSprintf(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return analysis.IsFunc(fn, "fmt", "Sprintf") ||
		analysis.IsFunc(fn, "fmt", "Sprint") ||
		analysis.IsFunc(fn, "fmt", "Sprintln")
}

// paramAt returns the parameter corresponding to argument i, folding
// variadic tails onto the last parameter.
func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i >= n {
		if sig.Variadic() {
			return sig.Params().At(n - 1)
		}
		return nil
	}
	return sig.Params().At(i)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}
