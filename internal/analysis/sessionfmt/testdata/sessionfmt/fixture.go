// Fixture for the sessionfmt analyzer: fmt.Sprintf feeding a session sink
// (a string parameter named session, or a Session struct field) is
// flagged; Sprintf feeding anything else is not.
package sessionfmt

import (
	"fmt"

	"asyncft/internal/wire"
)

func dial(session string, n int) {}

func logf(msg string) {}

func badDirect(i int) {
	dial(fmt.Sprintf("acs/%d", i), i) // want "session string built with ad-hoc fmt.Sprintf"
}

func badVar(i int) {
	s := fmt.Sprintf("rbc/%d", i)
	dial(s, i) // want "session string s built with ad-hoc fmt.Sprintf"
}

func badField(i int) wire.Envelope {
	return wire.Envelope{
		From:    0,
		To:      1,
		Session: fmt.Sprintf("mpc/%d", i), // want "session string built with ad-hoc fmt.Sprintf"
	}
}

func goodLiteral() {
	dial("root", 0) // literal sessions are fine (roots, tests)
}

func goodOtherSprintf(i int) {
	logf(fmt.Sprintf("round %d done", i)) // not a session sink
	payload := []byte(fmt.Sprintf("tx/%d", i))
	_ = payload
}
