// Fixture for the sessionfmt analyzer: fmt.Sprintf feeding a session sink
// (a string parameter named session, or a Session struct field) or a
// metric label sink (the obs vec With methods) is flagged; Sprintf feeding
// anything else is not.
package sessionfmt

import (
	"fmt"

	"asyncft/internal/obs"
	"asyncft/internal/wire"
)

func dial(session string, n int) {}

func logf(msg string) {}

func badDirect(i int) {
	dial(fmt.Sprintf("acs/%d", i), i) // want "session string built with ad-hoc fmt.Sprintf"
}

func badVar(i int) {
	s := fmt.Sprintf("rbc/%d", i)
	dial(s, i) // want "session string s built with ad-hoc fmt.Sprintf"
}

func badField(i int) wire.Envelope {
	return wire.Envelope{
		From:    0,
		To:      1,
		Session: fmt.Sprintf("mpc/%d", i), // want "session string built with ad-hoc fmt.Sprintf"
	}
}

func goodLiteral() {
	dial("root", 0) // literal sessions are fine (roots, tests)
}

func goodOtherSprintf(i int) {
	logf(fmt.Sprintf("round %d done", i)) // not a session sink
	payload := []byte(fmt.Sprintf("tx/%d", i))
	_ = payload
}

func badLabelDirect(reg *obs.Registry, peer int) {
	v := reg.CounterVec("frames_total", "frames by peer", "peer")
	v.With(fmt.Sprintf("peer%d", peer)).Inc() // want "metric label value built with fmt.Sprintf"
}

func badLabelVar(reg *obs.Registry, epoch int) {
	g := reg.GaugeVec("epoch_members", "members by epoch", "epoch")
	lbl := fmt.Sprintf("e%d", epoch)
	g.With(lbl).Set(4) // want "metric label value lbl built with fmt.Sprintf"
}

func goodLabelFixed(reg *obs.Registry, ok bool) {
	v := reg.CounterVec("redeals_total", "re-deals by outcome", "outcome")
	if ok {
		v.With("ok").Inc() // fixed vocabulary is the contract
	} else {
		v.With("failed").Inc()
	}
}

func goodLabelIndex(reg *obs.Registry, peer int) {
	v := reg.CounterVec("frames_total", "frames by peer", "peer")
	v.WithIndex(peer).Inc() // integer ids go through WithIndex, not Sprintf
}
