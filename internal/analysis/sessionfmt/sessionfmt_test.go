package sessionfmt_test

import (
	"testing"

	"asyncft/internal/analysis/analysistest"
	"asyncft/internal/analysis/sessionfmt"
)

func TestSessionfmt(t *testing.T) {
	analysistest.Run(t, sessionfmt.Analyzer, "testdata/sessionfmt")
}
