package asyncft

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"asyncft/internal/reconfig"
	"asyncft/internal/runtime"
)

// foldMembership replays the committed membership operations of a ledger
// exactly like every party does internally: an operation committed in slot
// k reshapes the member set at slot k+lag. It returns the join slot per
// party (−1 for genesis members) and the final member set — the test-side
// oracle for asserting who was a member when.
func foldMembership(ledger []LedgerEntry, genesis []int, lag, slots, universe int) (map[int]int, []int) {
	set := make(map[int]bool, len(genesis))
	for _, p := range genesis {
		set[p] = true
	}
	joined := make(map[int]int)
	for _, p := range genesis {
		joined[p] = -1
	}
	bySlot := make(map[int][]LedgerEntry)
	for _, e := range ledger {
		bySlot[e.Slot] = append(bySlot[e.Slot], e)
	}
	for s := 0; s < slots; s++ {
		for _, e := range bySlot[s] {
			changes, _, ok := reconfig.DecodePayload(e.Payload)
			if !ok {
				continue
			}
			for _, ch := range changes {
				if ch.Party < 0 || ch.Party >= universe {
					continue
				}
				if ch.Add {
					if !set[ch.Party] {
						set[ch.Party] = true
						if _, seen := joined[ch.Party]; !seen {
							joined[ch.Party] = s + lag
						}
					}
				} else if set[ch.Party] && len(set) > reconfig.MinMembers {
					delete(set, ch.Party)
				}
			}
		}
	}
	var final []int
	for p := range set {
		final = append(final, p)
	}
	return joined, final
}

// TestRollingReplacementScenario is the acceptance scenario for dynamic
// membership: an 8-party cluster starts a ledger on parties {0,1,2,3} and
// replaces every original one at a time during a 24-slot run, so the
// surviving set {4,5,6,7} is entirely disjoint from genesis. The run's
// built-in checks enforce bit-identical ledgers across all eight parties
// (the retired originals follow as observers) plus final-member and pool
// agreement; the test additionally asserts each joiner's own submissions
// committed, and only after its join boundary.
func TestRollingReplacementScenario(t *testing.T) {
	const slots, lag = 24, 2
	c, err := New(Config{N: 8, T: 1, Seed: 17, Coin: CoinLocal, CoinRounds: 1, Timeout: 300 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var changes []MembershipChange
	for i := 0; i < 4; i++ {
		at := 4 * (i + 1) // slots 4, 8, 12, 16
		changes = append(changes,
			MembershipChange{Slot: at, Add: true, Party: 4 + i},
			MembershipChange{Slot: at, Add: false, Party: i},
		)
	}
	genesis := []int{0, 1, 2, 3}
	ledger, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{
		Session:  "rolling",
		Slots:    slots,
		Payloads: ledgerPayload,
		DynamicMembership: &DynamicMembership{
			Genesis:   genesis,
			Lag:       lag,
			Changes:   changes,
			PoolSize:  2,
			CheckPool: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	joined, final := foldMembership(ledger, genesis, lag, slots, 8)
	if len(final) != 4 {
		t.Fatalf("final member set %v, want 4 parties", final)
	}
	for _, p := range final {
		if p < 4 {
			t.Fatalf("original party %d survived the rolling replacement: %v", p, final)
		}
	}
	for p := 4; p < 8; p++ {
		join, ok := joined[p]
		if !ok {
			t.Fatalf("replacement party %d never joined", p)
		}
		var slots []int
		for _, e := range ledger {
			if _, app, _ := reconfig.DecodePayload(e.Payload); bytes.HasPrefix(app, []byte(fmt.Sprintf("tx/p%d/", p))) {
				slots = append(slots, e.Slot)
			}
		}
		if len(slots) == 0 {
			t.Fatalf("replacement party %d committed no batches", p)
		}
		for _, s := range slots {
			if s < join {
				t.Fatalf("party %d batch committed at slot %d before its join boundary %d", p, s, join)
			}
		}
	}
}

// TestByzantineRemovalScenario removes an actively Byzantine party
// mid-run: genesis member 3 floods the run's epoch-0 sessions with
// garbage instead of running the protocol, the honest members vote it out
// and co-opt party 4, and the ledger completes with the noise source
// silenced at the epoch-1 route by construction.
func TestByzantineRemovalScenario(t *testing.T) {
	const slots, lag = 10, 2
	e0 := runtime.SubSession("abc/brm", "e", 0)
	cfg := Config{N: 6, T: 1, Seed: 23, Coin: CoinLocal, CoinRounds: 1, Timeout: 300 * time.Second,
		Byzantine: map[int]Behavior{3: Noise(
			runtime.SubSession(e0, "slot", 0, "rbc", 0),
			runtime.SubSession(e0, "slot", 1, "cs"),
			runtime.SubSession(e0, "pool", "deal"),
		)}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	genesis := []int{0, 1, 2, 3}
	ledger, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{
		Session:  "brm",
		Slots:    slots,
		Payloads: ledgerPayload,
		DynamicMembership: &DynamicMembership{
			Genesis: genesis,
			Lag:     lag,
			Changes: []MembershipChange{
				{Slot: 1, Add: true, Party: 4},
				{Slot: 1, Add: false, Party: 3},
			},
			PoolSize: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, final := foldMembership(ledger, genesis, lag, slots, 6)
	for _, p := range final {
		if p == 3 {
			t.Fatalf("Byzantine party 3 still a member at the end: %v", final)
		}
	}
	for _, e := range ledger {
		if _, app, _ := reconfig.DecodePayload(e.Payload); bytes.HasPrefix(app, []byte("tx/p4/")) {
			return // the co-opted replacement committed a batch
		}
	}
	t.Fatal("replacement party 4 committed nothing")
}

// TestReconfigureMidRun injects a membership operation through the public
// Cluster.Reconfigure entry point while the run is in flight, instead of
// scheduling it up front.
func TestReconfigureMidRun(t *testing.T) {
	const slots = 10
	c, err := New(Config{N: 6, T: 1, Seed: 29, Coin: CoinLocal, CoinRounds: 1, Timeout: 300 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Reconfigure("nosuch", MembershipChange{Slot: 0, Add: true, Party: 4}); err == nil {
		t.Fatal("Reconfigure on an unregistered session must error")
	}

	go func() {
		// Inject once the run has registered its source; before that the
		// call reports an unknown session and we retry.
		for {
			err := c.Reconfigure("midrun", MembershipChange{Slot: 2, Add: true, Party: 4})
			if err == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	ledger, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{
		Session:  "midrun",
		Slots:    slots,
		Payloads: ledgerPayload,
		DynamicMembership: &DynamicMembership{
			Genesis: []int{0, 1, 2, 3},
			Lag:     2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	joined, final := foldMembership(ledger, []int{0, 1, 2, 3}, 2, slots, 6)
	if _, ok := joined[4]; !ok {
		t.Fatalf("injected join never activated; final set %v", final)
	}
}

// TestDynamicMembershipSpecValidation exercises the public-surface guard
// rails: bad genesis sets, Resume incompatibility, session reuse.
func TestDynamicMembershipSpecValidation(t *testing.T) {
	c, err := New(Config{N: 6, T: 1, Seed: 31, Coin: CoinLocal, CoinRounds: 1, Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := []AtomicBroadcastSpec{
		{Session: "v1", Slots: 4, DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2}}},
		{Session: "v2", Slots: 4, DynamicMembership: &DynamicMembership{Genesis: []int{3, 2, 1, 0}}},
		{Session: "v3", Slots: 4, DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2, 9}}},
		{Session: "v4", Slots: 4, DynamicMembership: &DynamicMembership{Genesis: []int{0, 0, 1, 2}}},
		{Session: "v5", Slots: 4, Resume: map[int]int{1: 2},
			DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2, 3}}},
	}
	for _, spec := range bad {
		if _, err := c.RunAtomicBroadcast(spec); err == nil {
			t.Fatalf("spec %q accepted, want error", spec.Session)
		}
	}
	if _, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{Session: "ok", Slots: 4,
		DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2, 3}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{Session: "ok", Slots: 4,
		DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2, 3}}}); err == nil {
		t.Fatal("session reuse accepted, want error")
	}
}
