package asyncft

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestClusterShardedBroadcast drives the public sharded API end to end:
// RunAtomicBroadcast with Shards ≥ 1 started in the background, clients
// feeding it through Cluster.Submit via different front-door parties,
// acks carrying committed positions, and the returned ledger tagged with
// per-shard entries.
func TestClusterShardedBroadcast(t *testing.T) {
	c, err := New(fastConfig(61))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const shards, subs = 2, 10
	type run struct {
		ledger []LedgerEntry
		err    error
	}
	done := make(chan run, 1)
	go func() {
		ledger, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{
			Session: "shardapi", Slots: 4, Width: 2, Shards: shards,
		})
		done <- run{ledger, err}
	}()

	type ack struct {
		stream, payload string
		pos             SubmitPos
		err             error
	}
	acks := make([]ack, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		i := i
		acks[i].stream = fmt.Sprintf("stream-%d", i%4)
		acks[i].payload = fmt.Sprintf("op-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			acks[i].pos, acks[i].err = c.Submit("shardapi", i%4, []byte(acks[i].stream), []byte(acks[i].payload))
		}()
	}
	wg.Wait()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}

	// Every ack names a real position on a real shard; the ledger carries
	// entries from each shard that committed ops, each tagged with it.
	acked := 0
	for i := range acks {
		if acks[i].err != nil {
			t.Fatalf("submit %d: %v", i, acks[i].err)
		}
		acked++
		if p := acks[i].pos; p.Shard < 0 || p.Shard >= shards || p.Slot < 0 || p.Index < 0 {
			t.Fatalf("submit %d: bad position %+v", i, p)
		}
	}
	if acked != subs {
		t.Fatalf("acked %d of %d", acked, subs)
	}
	seen := map[int]bool{}
	for _, e := range r.ledger {
		if e.Shard < 0 || e.Shard >= shards {
			t.Fatalf("ledger entry on shard %d, want [0,%d)", e.Shard, shards)
		}
		seen[e.Shard] = true
		if len(e.Payload) == 0 {
			continue
		}
	}
	if len(seen) == 0 {
		t.Fatal("empty sharded ledger despite acked submissions")
	}
}

// TestClusterShardedSpecValidation pins the spec errors: sharded runs
// are fed through Submit only, and QueueCap means nothing without them.
func TestClusterShardedSpecValidation(t *testing.T) {
	c, err := New(fastConfig(62))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := []AtomicBroadcastSpec{
		{Session: "v1", Slots: 2, Shards: 1, Payloads: func(party, slot int) []byte { return nil }},
		{Session: "v2", Slots: 2, Shards: 1, Resume: map[int]int{1: 1}},
		{Session: "v3", Slots: 2, Shards: 1, DynamicMembership: &DynamicMembership{Genesis: []int{0, 1, 2}}},
		{Session: "v4", Slots: 2, QueueCap: 8},
		{Session: "v5", Slots: 2, Shards: -1, QueueCap: 8},
	}
	for i, spec := range bad {
		if _, err := c.RunAtomicBroadcast(spec); err == nil {
			t.Errorf("spec %d (%+v) accepted, want error", i, spec)
		}
	}
	if _, err := c.Submit("never-ran", 9, []byte("s"), []byte("p")); err == nil {
		t.Error("Submit with out-of-range party accepted")
	}
}

// TestClusterSubmitBackpressure pins the public backpressure contract: a
// tiny queue rejects overflow with ErrOverloaded (the root-level alias of
// the internal sentinel), and admitted ops still commit.
func TestClusterSubmitBackpressure(t *testing.T) {
	c, err := New(fastConfig(63))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.RunAtomicBroadcast(AtomicBroadcastSpec{
			Session: "shardbp", Slots: 6, Width: 1, Shards: 1, QueueCap: 1,
		})
		done <- err
	}()
	// Hammer one party's cap-1 queue concurrently: overflow must bounce
	// with ErrOverloaded; admitted ops either commit with positions or —
	// if they miss the run's last slot — report ErrUncommitted, never a
	// silent drop.
	var mu sync.Mutex
	var wg sync.WaitGroup
	overloaded := 0
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Submit("shardbp", 0, []byte("bp-stream"), []byte(fmt.Sprintf("bp-%d", i)))
			switch {
			case err == nil, errors.Is(err, ErrUncommitted):
			case errors.Is(err, ErrOverloaded):
				mu.Lock()
				overloaded++
				mu.Unlock()
			default:
				t.Errorf("submit %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if overloaded == 0 {
		t.Log("queue never filled (acceptable on a fast machine); backpressure path covered by internal tests")
	}
}
