// Command experiments regenerates the full evaluation of EXPERIMENTS.md:
// one table per quantitative claim of the paper (E1–E9), the batching and
// atomic-broadcast throughput studies (E10, E11), the coded-dispersal
// bandwidth study (E12), the MPC circuit-evaluation study (E13), and the
// design ablations. Use -scale to trade statistical resolution for wall
// time and -only to run a single experiment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"asyncft/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "trial-count multiplier (0.1 = smoke run, 1.0 = full)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E8); empty = all")
	flag.Parse()

	type exp struct {
		id string
		fn func(experiments.Scale) (*experiments.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1CoinBias},
		{"E2", experiments.E2CoinAgreement},
		{"E3", experiments.E3ShunBound},
		{"E4", experiments.E4FairValidity},
		{"E5", experiments.E5Unanimity},
		{"E6", experiments.E6Scaling},
		{"E7", experiments.E7CoinComparison},
		{"E8", experiments.E8LowerBound},
		{"E9", experiments.E9FairChoice},
		{"E10", experiments.E10BatchThroughput},
		{"E11", experiments.E11LedgerThroughput},
		{"E12", experiments.E12CodedBroadcast},
		{"E13", experiments.E13CircuitThroughput},
		{"E14", experiments.E14CatchupLatency},
		{"E15", experiments.E15EpochSwitch},
		{"E16", experiments.E16AgreementCore},
		{"E17", experiments.E17ShardScaleOut},
		{"A1", experiments.AblationReconstruct},
		{"A2", experiments.AblationPolicy},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failures := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tbl, err := e.fn(experiments.Scale(*scale))
		if tbl != nil {
			tbl.Fprint(os.Stdout)
		}
		if err != nil {
			failures++
			log.Printf("%s FAILED: %v", e.id, err)
		}
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) falsified their claim\n", failures)
		os.Exit(1)
	}
}
