// Command lowerbound executes the paper's Section 2 (Theorem 2.2) as an
// empirical table: a terminating AVSS for n=4, t=1 is run honestly, then
// under the Claim 1 (equivocating dealer) and Claim 2 (simulating party)
// attacks, and the measured termination/agreement/correctness rates show
// that termination was bought at the price of correctness — exactly what
// the theorem says is unavoidable for n ≤ 4t.
package main

import (
	"flag"
	"log"
	"os"

	"asyncft/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "trial-count multiplier")
	flag.Parse()

	tbl, err := experiments.E8LowerBound(experiments.Scale(*scale))
	if tbl != nil {
		tbl.Fprint(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}
