// Command asyncftvet machine-checks the repo's consensus invariants with
// the internal/analysis suite (detrange, bufpool, ctxleak, sessionfmt,
// fieldops).
//
// Standalone:
//
//	asyncftvet [-json] [-tests=false] [packages ...]   # default ./...
//
// As a vet tool (cmd/go drives it per package through the vet.cfg
// protocol, so findings land in the usual build-tool format):
//
//	go vet -vettool=$(which asyncftvet) ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings. Suppressed
// findings (//asyncftvet:ignore with a reason) never fail the run but are
// counted on stderr so CI can surface creeping suppression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncft/internal/analysis"
	"asyncft/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asyncftvet", flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (cmd/go protocol: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON (cmd/go protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	testsFlag := fs.Bool("tests", true, "also analyze test files (standalone mode)")
	fs.Parse(args)

	switch {
	case *vFlag != "":
		// cmd/go hashes this line into the build cache key; it only needs
		// to be stable and start with the tool name.
		fmt.Println("asyncftvet version v1")
		return 0
	case *flagsFlag:
		// Tell cmd/go which flags may be forwarded from the vet command
		// line.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON"}]`)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetTool(rest[0], *jsonFlag)
	}
	return standalone(rest, *jsonFlag, *testsFlag)
}

// standalone loads packages itself and reports across the whole set.
func standalone(patterns []string, asJSON, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns, tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncftvet:", err)
		return 1
	}
	res, err := analysis.Run(suite.All, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncftvet:", err)
		return 1
	}
	return report(res, asJSON)
}

// vetConfig mirrors the JSON cmd/go writes for each package when invoked
// as `go vet -vettool=asyncftvet` (see cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// vetTool analyzes the single package described by a cmd/go vet.cfg file.
func vetTool(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncftvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "asyncftvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite carries no cross-package facts, but cmd/go caches the
	// (empty) facts file keyed by build ID.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "asyncftvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test variants arrive as "p [p.test]" / "p_test [p.test]".
	forTest := ""
	if i := strings.Index(cfg.ImportPath, " ["); i >= 0 {
		forTest = strings.TrimSuffix(cfg.ImportPath[i+2:], "]")
	}
	pkg, err := analysis.Check(cfg.ImportPath, forTest, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "asyncftvet:", err)
		return 1
	}
	res, err := analysis.Run(suite.All, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncftvet:", err)
		return 1
	}
	// cmd/go expects diagnostics on stderr and exit 2 when any were found.
	for _, d := range res.Active() {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if asJSON {
		emitJSON(res)
	}
	if len(res.Active()) > 0 {
		return 2
	}
	return 0
}

// report prints a whole-run result (standalone mode).
func report(res *analysis.Result, asJSON bool) int {
	if asJSON {
		emitJSON(res)
	} else {
		for _, d := range res.Active() {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if s := res.Summary(); s != "" {
		fmt.Fprintln(os.Stderr, "asyncftvet:", s)
	}
	if len(res.Active()) > 0 {
		fmt.Fprintf(os.Stderr, "asyncftvet: %d finding(s)\n", len(res.Active()))
		return 2
	}
	return 0
}

// jsonDiag is the stable JSON shape for one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
	Ignored  bool   `json:"ignored,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

func emitJSON(res *analysis.Result) {
	out := struct {
		Findings   []jsonDiag     `json:"findings"`
		Suppressed map[string]int `json:"suppressed,omitempty"`
	}{Findings: []jsonDiag{}, Suppressed: res.IgnoreCounts()}
	for _, d := range res.Diagnostics {
		out.Findings = append(out.Findings, jsonDiag{
			Analyzer: d.Analyzer,
			Pos:      d.Pos.String(),
			Message:  d.Message,
			Ignored:  d.Ignored,
			Reason:   d.IgnoreReason,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
