// Command fba runs one fair Byzantine agreement (Algorithm 3) over values
// supplied on the command line, one per party (missing parties default to
// "value-<i>"), and prints the agreed winner.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"asyncft"
)

func main() {
	n := flag.Int("n", 4, "number of parties")
	t := flag.Int("t", 1, "fault tolerance (3t+1 ≤ n)")
	k := flag.Int("k", 2, "coin rounds per strong coin flip inside FairChoice")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cluster, err := asyncft.New(asyncft.Config{
		N: *n, T: *t, Seed: *seed,
		Coin: asyncft.CoinLocal, CoinRounds: *k,
		Timeout: 5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	inputs := map[int][]byte{}
	args := flag.Args()
	for i := 0; i < *n; i++ {
		if i < len(args) {
			inputs[i] = []byte(args[i])
		} else {
			inputs[i] = []byte(fmt.Sprintf("value-%d", i))
		}
	}
	for i := 0; i < *n; i++ {
		fmt.Printf("party %d proposes %q\n", i, inputs[i])
	}

	start := time.Now()
	winner, err := cluster.FairBA("cli", inputs)
	if err != nil {
		log.Fatal(err)
	}
	m := cluster.Metrics()
	fmt.Printf("\nagreed output: %q\n", winner)
	fmt.Printf("elapsed %v, %d messages, %d bytes\n",
		time.Since(start).Round(time.Millisecond), m.Messages, m.Bytes)
}
