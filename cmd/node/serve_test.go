package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitAck is one client's view of an acknowledged submission.
type submitAck struct {
	Shard, Slot, Index int
	stream, payload    string
}

// postSubmit POSTs one op to a node's front door, retrying while the
// server is still coming up, and returns the HTTP status plus the parsed
// ack (on 200). Any transport failure after the retry budget is fatal.
func postSubmit(t *testing.T, addr, stream, payload string) (int, submitAck) {
	t.Helper()
	url := fmt.Sprintf("http://%s/submit?stream=%s", addr, stream)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(url, "application/octet-stream", strings.NewReader(payload))
		if err != nil {
			if time.Now().After(deadline) {
				t.Errorf("submit %q: %v", payload, err)
				return 0, submitAck{}
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ack := submitAck{stream: stream, payload: payload}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &ack); err != nil {
				t.Errorf("submit %q: bad ack %q: %v", payload, body, err)
			}
		}
		return resp.StatusCode, ack
	}
}

// TestE2EShardedServingPlane runs 4 in-process nodes over loopback TCP
// with -shards 2 and a -serve front door each, drives concurrent clients
// through different nodes' doors, and asserts the serving-plane
// contract: every acked submission sits exactly once at its acked
// (shard, slot, index) position in every node's printed shard log, and
// the logs are byte-identical across nodes.
func TestE2EShardedServingPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, shards, slots = 4, 2, 6
	peers := freeAddrs(t, n)
	doors := freeAddrs(t, n)

	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var nodeWG sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		nodeWG.Add(1)
		go func() {
			defer nodeWG.Done()
			errs[id] = runNode(options{
				id: id, peers: peers, t: 1, mode: "abc",
				k: 1, batch: 1, slots: slots, width: 2,
				shards: shards, serve: doors[id],
				timeout: 90 * time.Second,
			}, &outs[id])
		}()
	}

	// Concurrent clients, spread over nodes and over streams that cover
	// both shards. Ops that miss the run's final slot come back 503 —
	// tolerated (reported backpressure), never silently dropped.
	const clients = 16
	acks := make([]submitAck, 0, clients)
	statuses := make([]int, clients)
	var mu sync.Mutex
	var cliWG sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		cliWG.Add(1)
		go func() {
			defer cliWG.Done()
			status, ack := postSubmit(t, doors[i%n],
				fmt.Sprintf("stream-%d", i%6), fmt.Sprintf("e2e-op-%d", i))
			mu.Lock()
			statuses[i] = status
			if status == http.StatusOK {
				acks = append(acks, ack)
			}
			mu.Unlock()
		}()
	}
	cliWG.Wait()
	nodeWG.Wait()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("party %d: %v", id, errs[id])
		}
	}
	for i, s := range statuses {
		if s != http.StatusOK && s != http.StatusServiceUnavailable && s != http.StatusTooManyRequests {
			t.Fatalf("client %d: unexpected status %d", i, s)
		}
	}
	if len(acks) == 0 {
		t.Fatal("no submission was acked")
	}

	// Byte-identical shard logs (and digests) at every node.
	for id := 1; id < n; id++ {
		if outs[0].String() != outs[id].String() {
			t.Fatalf("shard logs differ:\nparty 0:\n%s\nparty %d:\n%s", outs[0].String(), id, outs[id].String())
		}
	}
	log := outs[0].String()
	for s := 0; s < shards; s++ {
		if !strings.Contains(log, fmt.Sprintf("shard[%d] digest: ", s)) {
			t.Fatalf("no digest line for shard %d:\n%s", s, log)
		}
	}
	// Every acked op sits exactly once, at exactly its acked position.
	for _, a := range acks {
		line := fmt.Sprintf("shard[%d] slot=%d index=%d", a.Shard, a.Slot, a.Index)
		want := fmt.Sprintf("%s stream=%q payload=%q", line, a.stream, a.payload)
		found := false
		for _, l := range strings.Split(log, "\n") {
			if strings.HasPrefix(l, line+" ") {
				if !strings.HasSuffix(l, fmt.Sprintf("stream=%q payload=%q", a.stream, a.payload)) {
					t.Fatalf("position %s holds %q, want %q", line, l, want)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("acked position %s missing from log:\n%s", line, log)
		}
		if got := strings.Count(log, fmt.Sprintf("payload=%q", a.payload)); got != 1 {
			t.Fatalf("acked op %q appears %d times, want exactly once", a.payload, got)
		}
	}
	t.Logf("%d/%d submissions acked and position-verified across %d nodes", len(acks), clients, n)
}

// TestE2EServingBackpressure floods one node's front door with a cap-1
// admission queue: overflow must answer 429 and a 429'd op must never
// appear on any ledger — admission control is backpressure, not a lossy
// queue.
func TestE2EServingBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots = 4, 3
	peers := freeAddrs(t, n)
	doors := freeAddrs(t, n)

	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var nodeWG sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		nodeWG.Add(1)
		go func() {
			defer nodeWG.Done()
			errs[id] = runNode(options{
				id: id, peers: peers, t: 1, mode: "abc",
				k: 1, batch: 1, slots: slots, width: 1,
				shards: 1, serve: doors[id], queue: 1,
				timeout: 90 * time.Second,
			}, &outs[id])
		}()
	}

	const clients = 24
	var mu sync.Mutex
	var cliWG sync.WaitGroup
	rejected := map[string]bool{}
	okCount, rejCount := 0, 0
	for i := 0; i < clients; i++ {
		i := i
		cliWG.Add(1)
		go func() {
			defer cliWG.Done()
			payload := fmt.Sprintf("bp-op-%d", i)
			status, _ := postSubmit(t, doors[0], "bp-stream", payload)
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusOK:
				okCount++
			case http.StatusTooManyRequests:
				rejCount++
				rejected[payload] = true
			case http.StatusServiceUnavailable:
				// missed the final slot — reported, acceptable
			default:
				t.Errorf("client %d: unexpected status %d", i, status)
			}
		}()
	}
	cliWG.Wait()
	nodeWG.Wait()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("party %d: %v", id, errs[id])
		}
	}
	if rejCount == 0 {
		t.Log("queue never filled (fast machine); 429 path covered by unit tests")
	}
	// A rejected op was never enqueued: it must be absent from the ledger.
	log := outs[0].String()
	for payload := range rejected {
		if strings.Contains(log, fmt.Sprintf("payload=%q", payload)) {
			t.Fatalf("429-rejected op %q reached the ledger:\n%s", payload, log)
		}
	}
	t.Logf("%d acked, %d rejected with 429 of %d clients", okCount, rejCount, clients)
}
