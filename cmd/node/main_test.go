package main

import (
	"asyncft/internal/reconfig"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback ports by listening on :0, then
// releases them for the transports to claim. The tiny window between close
// and re-listen is acceptable in a loopback test.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// launch runs one in-process node per party with the given options template
// (id and peers filled in per party) and returns each party's output.
func launch(t *testing.T, n int, mk func(id int, peers []string) options) []string {
	t.Helper()
	return launchOn(t, freeAddrs(t, n), mk)
}

// launchOn is launch with a caller-provided address list, for tests that
// need to reference a party's endpoint inside the options (e.g. a -submit
// operation carrying a joiner's address).
func launchOn(t *testing.T, peers []string, mk func(id int, peers []string) options) []string {
	t.Helper()
	n := len(peers)
	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = runNode(mk(id, peers), &outs[id])
		}()
	}
	wg.Wait()
	res := make([]string, n)
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("party %d: %v", id, errs[id])
		}
		res[id] = outs[id].String()
	}
	return res
}

// TestE2EAtomicBroadcastLedger runs 4 in-process nodes over loopback TCP in
// -mode abc and asserts every party printed the byte-identical ledger.
func TestE2EAtomicBroadcastLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots = 4, 3
	outs := launch(t, n, func(id int, peers []string) options {
		return options{
			id: id, peers: peers, t: 1, mode: "abc", input: "tx",
			k: 1, batch: 1, slots: slots, width: 0, timeout: 90 * time.Second,
		}
	})
	var digest string
	for id, out := range outs {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		last := lines[len(lines)-1]
		if !strings.HasPrefix(last, "ledger digest: ") {
			t.Fatalf("party %d: no digest line in output:\n%s", id, out)
		}
		if digest == "" {
			digest = last
		} else if digest != last {
			t.Fatalf("ledger digests differ:\nparty 0: %s\nparty %d: %s", digest, id, last)
		}
		// The full entry listing must replicate too, not just the digest.
		if outs[0] != out {
			t.Fatalf("ledger listings differ:\nparty 0:\n%s\nparty %d:\n%s", outs[0], id, out)
		}
		if got := strings.Count(out, "ledger["); got < slots*(n-1) {
			t.Fatalf("party %d: %d ledger entries, want ≥ %d", id, got, slots*(n-1))
		}
	}
}

// TestE2ECodedLedgerOverTCP drives the erasure-coded dispersal fast path
// over real sockets: batch prefixes longer than rbc.DefaultCodedThreshold
// force every slot A-Cast coded, and one party runs -no-coded to prove
// mixed configurations still replicate byte-identically.
func TestE2ECodedLedgerOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots = 4, 2
	big := strings.Repeat("x", 2048) // every batch crosses the coded threshold
	outs := launch(t, n, func(id int, peers []string) options {
		return options{
			id: id, peers: peers, t: 1, mode: "abc", input: big,
			noCoded: id == 3, // sender-local toggle: mixed flavors must interoperate
			k:       1, batch: 1, slots: slots, width: 0, timeout: 90 * time.Second,
		}
	})
	for id, out := range outs {
		if outs[0] != out {
			t.Fatalf("coded ledger outputs differ between party 0 and party %d", id)
		}
		if got := strings.Count(out, "ledger["); got < slots*(n-1) {
			t.Fatalf("party %d: %d ledger entries, want ≥ %d", id, got, slots*(n-1))
		}
	}
}

// TestE2EFastPathLedgerOverTCP runs the agreement-core optimizations over
// real sockets: -fastpath and -bca at every node. All-honest loopback
// delivery means every slot should fast-commit the FULL contributor set (n
// entries per slot, strictly more than the classic path's n−t floor), and
// the listing must stay byte-identical.
func TestE2EFastPathLedgerOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots = 4, 3
	outs := launch(t, n, func(id int, peers []string) options {
		return options{
			id: id, peers: peers, t: 1, mode: "abc", input: "tx",
			fastPath: true, bca: true,
			k: 1, batch: 1, slots: slots, width: 0, timeout: 90 * time.Second,
		}
	})
	for id, out := range outs {
		if outs[0] != out {
			t.Fatalf("fast-path ledger outputs differ between party 0 and party %d", id)
		}
		if got := strings.Count(out, "ledger["); got != slots*n {
			t.Fatalf("party %d: %d ledger entries, want the full %d", id, got, slots*n)
		}
	}
}

// TestE2EBatchedCoinFlips runs 4 in-process nodes over loopback TCP with
// -batch 3 coin flips and asserts per-instance agreement across parties.
func TestE2EBatchedCoinFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, batchK = 4, 3
	outs := launch(t, n, func(id int, peers []string) options {
		return options{
			id: id, peers: peers, t: 1, mode: "proto", protocol: "coinflip",
			k: 1, batch: batchK, timeout: 90 * time.Second,
		}
	})
	var ref []string
	for id, out := range outs {
		var coins []string
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, "[node/cf/") {
				coins = append(coins, line)
			}
		}
		sort.Strings(coins)
		if len(coins) != batchK {
			t.Fatalf("party %d: %d coin lines, want %d:\n%s", id, len(coins), batchK, out)
		}
		if ref == nil {
			ref = coins
		} else if fmt.Sprint(ref) != fmt.Sprint(coins) {
			t.Fatalf("coin outputs differ:\nparty 0: %v\nparty %d: %v", ref, id, coins)
		}
	}
}

func TestRunNodeRejectsBadOptions(t *testing.T) {
	base := options{peers: []string{"a", "b", "c", "d"}, t: 1, mode: "proto", protocol: "rbc", batch: 1}
	cases := []struct {
		name string
		mut  func(o options) options
	}{
		{"too-few-peers", func(o options) options { o.peers = o.peers[:2]; return o }},
		{"id-range", func(o options) options { o.id = 9; return o }},
		{"bad-batch", func(o options) options { o.batch = 0; return o }},
		{"bad-mode", func(o options) options { o.mode = "nope"; return o }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := runNode(c.mut(base), &bytes.Buffer{}); err == nil {
				t.Fatal("invalid options accepted")
			}
		})
	}
}

// TestE2EMPCVarianceOverTCP runs 4 in-process nodes over loopback TCP in
// -mode mpc: the parties jointly evaluate the private-variance circuit
// (n+1 Mul gates through Beaver degree reduction) and every party must
// print byte-identical aggregate outputs.
func TestE2EMPCVarianceOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n = 4
	outs := launch(t, n, func(id int, peers []string) options {
		return options{
			id: id, peers: peers, t: 1, mode: "mpc",
			x: uint64(5*id + 3), k: 1, batch: 1, timeout: 90 * time.Second,
		}
	})
	for id, out := range outs {
		if outs[0] != out {
			t.Fatalf("mpc outputs differ:\nparty 0:\n%s\nparty %d:\n%s", outs[0], id, out)
		}
		if !strings.Contains(out, "mpc sum(x) = ") || !strings.Contains(out, "mpc n²·var(x) = ") {
			t.Fatalf("party %d: missing aggregate lines:\n%s", id, out)
		}
	}
	// With all four contributing, the aggregates are exact: inputs 3,8,13,18
	// give Σx = 42 and n·Σx² − (Σx)² = 4·566 − 1764 = 500.
	if !strings.Contains(outs[0], "mpc sum(x) = 42\n") {
		// The asynchronous core set may have dropped a slow party; the run
		// is still correct (agreement was checked above) but not the
		// full-participation constant.
		t.Logf("core set dropped a party; skipping exact-value check:\n%s", outs[0])
		return
	}
	if !strings.Contains(outs[0], "mpc n²·var(x) = 500\n") {
		t.Fatalf("full-participation variance mismatch:\n%s", outs[0])
	}
}

// TestE2EResumeCatchesUp32SlotLag is the restart e2e: 4 nodes over
// loopback TCP run a 36-slot ledger, with node 3 started as a restarted
// replica (-resume 32) — it has no state for slots [0, 32), catches the
// whole 32-slot lag up via statesync from its peers while they keep
// committing, participates live in the final slots, and must print the
// byte-identical ledger listing and digest.
func TestE2EResumeCatchesUp32SlotLag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots, lag = 4, 36, 32
	outs := launch(t, n, func(id int, peers []string) options {
		o := options{
			id: id, peers: peers, t: 1, mode: "abc", input: "tx",
			k: 1, batch: 1, slots: slots, width: 8,
			timeout: 120 * time.Second, grace: 3 * time.Second,
		}
		if id == 3 {
			o.resume = lag
		}
		return o
	})
	var digest string
	for id, out := range outs {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		last := lines[len(lines)-1]
		if !strings.HasPrefix(last, "ledger digest: ") {
			t.Fatalf("party %d: no digest line in output:\n%s", id, out)
		}
		if digest == "" {
			digest = last
		} else if digest != last {
			t.Fatalf("ledger digests differ after resume:\nparty 0: %s\nparty %d: %s", digest, id, last)
		}
		if outs[0] != out {
			t.Fatalf("ledger listings differ between party 0 and resumed-run party %d", id)
		}
		if got := strings.Count(out, "ledger["); got < slots*(n-2) {
			t.Fatalf("party %d: %d ledger entries, want ≥ %d", id, got, slots*(n-2))
		}
	}
	// The resumed party never ran slots [0, lag): every one of its entries
	// there must have arrived via verified state transfer — which the
	// byte-identical listing above already proves. Check the lag really
	// existed: the shared ledger holds committed entries in those slots.
	for slot := 0; slot < lag; slot++ {
		if !strings.Contains(outs[3], fmt.Sprintf("slot=%d ", slot)) {
			t.Fatalf("resumed party's ledger is missing slot %d", slot)
		}
	}
}

func TestRunNodeRejectsBadResume(t *testing.T) {
	peers := freeAddrs(t, 4)
	o := options{
		id: 0, peers: peers, t: 1, mode: "abc", input: "tx",
		k: 1, batch: 1, slots: 4, resume: 4, timeout: 5 * time.Second, grace: -1,
	}
	if err := runNode(o, &bytes.Buffer{}); err == nil {
		t.Fatal("resume ≥ slots accepted")
	}
}

// TestE2EDynamicMembershipChurnOverTCP is the churn e2e over real loopback
// TCP: five processes, genesis members {0,1,2,3}, with node 4 started as a
// joiner the members initially have NO address for — their -peers slot for
// it is empty. Nodes 0, 2 and 3 co-propose the join at slot 2 with node
// 4's endpoint attached — the schedule applies an operation only when
// ≥ t+1 distinct members' committed entries carry it — so the members
// learn the address from the committed operation (transport.AddPeer) and
// the joiner's statesync bootstrap converges on the retried head
// requests. Node 1 proposes its own retirement at slot 6 via -retire,
// co-signed by nodes 2 and 3 via -submit, and follows the tail as an
// observer. Every node — members, joiner,
// retiree — must print the byte-identical ledger listing, digest, and
// final member set, and the joiner's own batches must have committed.
func TestE2EDynamicMembershipChurnOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners")
	}
	const n, slots = 5, 12
	allAddrs := freeAddrs(t, n)
	outs := launchOn(t, allAddrs, func(id int, peers []string) options {
		o := options{
			id: id, peers: peers, t: 1, mode: "abc", input: "tx",
			k: 1, batch: 1, slots: slots, width: 0,
			members: []int{0, 1, 2, 3},
			pace:    50 * time.Millisecond,
			timeout: 120 * time.Second, grace: 3 * time.Second,
		}
		if id != 4 {
			// Members start without the joiner's endpoint: they learn it
			// from the committed add operation, not from configuration.
			o.peers = append([]string(nil), peers...)
			o.peers[4] = ""
		}
		// Endorsement: ops apply only when ≥ t+1 distinct members carry
		// them in one committed slot, so each op is co-proposed by 2t+1
		// members (any slot core set then contains ≥ t+1 of them).
		if id == 0 || id == 2 || id == 3 {
			o.submits = mustChanges(t, fmt.Sprintf("2:+4@%s", allAddrs[4]))
		}
		if id == 1 {
			o.retire = 6
		}
		if id == 2 || id == 3 {
			o.submits = append(o.submits, mustChanges(t, "6:-1")...)
		}
		return o
	})
	_ = allAddrs
	var digest, members string
	joinerCommitted := false
	for id, out := range outs {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) < 2 {
			t.Fatalf("party %d: truncated output:\n%s", id, out)
		}
		dl, ml := lines[len(lines)-2], lines[len(lines)-1]
		if !strings.HasPrefix(dl, "ledger digest: ") || !strings.HasPrefix(ml, "final members: ") {
			t.Fatalf("party %d: missing digest/members lines:\n%s", id, out)
		}
		if digest == "" {
			digest, members = dl, ml
		} else if digest != dl || members != ml {
			t.Fatalf("outputs diverge:\nparty 0: %s / %s\nparty %d: %s / %s", digest, members, id, dl, ml)
		}
		if outs[0] != out {
			t.Fatalf("ledger listings differ between party 0 and party %d", id)
		}
		if strings.Contains(out, `payload="tx/p4/`) || strings.Contains(out, "tx/p4/") {
			joinerCommitted = true
		}
	}
	if !strings.Contains(members, "[0 2 3 4]") {
		t.Fatalf("final member set %q, want [0 2 3 4]", members)
	}
	if !joinerCommitted {
		t.Fatal("joiner's own batches never committed")
	}
}

// httpGet fetches a URL with a short timeout, returning (0, "") when the
// server is not reachable — poll loops treat that as "not yet".
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestE2EObservabilityEndpoint drives the full observability plane over
// loopback TCP: 4 nodes in -mode abc with -fastpath, each serving its
// operational HTTP endpoint (-obs) and dumping Chrome-trace JSON
// (-tracefile). It asserts the readiness lifecycle — /healthz answers
// immediately, /readyz stays 503 while the node lacks its n−t peer quorum
// and flips to 200 once the cluster connects — then scrapes /metrics
// mid-run for Prometheus series from every instrumented layer, and
// finally validates each party's trace file as Chrome-trace JSON with
// paired slot spans.
func TestE2EObservabilityEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP listeners and HTTP servers")
	}
	const n, slots = 4, 3
	peers := freeAddrs(t, n)
	obsAddrs := freeAddrs(t, n)
	dir := t.TempDir()
	traceFile := func(id int) string { return filepath.Join(dir, fmt.Sprintf("trace-%d.json", id)) }
	mk := func(id int) options {
		return options{
			id: id, peers: peers, t: 1, mode: "abc", input: "tx",
			fastPath: true, bca: true,
			k: 1, batch: 1, slots: slots, width: 0,
			timeout: 90 * time.Second, grace: 5 * time.Second,
			obsAddr: obsAddrs[id], traceFile: traceFile(id),
		}
	}
	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	startNode := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = runNode(mk(id), &outs[id])
		}()
	}

	// Phase 1: node 0 alone. Its endpoint must serve /healthz as soon as
	// it is up, and /readyz must refuse while the peer quorum is missing.
	startNode(0)
	base := "http://" + obsAddrs[0]
	deadline := time.Now().Add(15 * time.Second)
	for {
		if code, _ := httpGet(t, base+"/healthz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("obs endpoint never served /healthz")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, body := httpGet(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with no peers connected: %d %q, want 503", code, body)
	}

	// Phase 2: the rest of the cluster. /readyz flips to 200 once ≥ n−t
	// parties (this one included) are connected.
	for id := 1; id < n; id++ {
		startNode(id)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		if code, _ := httpGet(t, base+"/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 200 after the cluster connected")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 3: scrape /metrics until every instrumented layer shows up
	// (the run plus its -grace linger keeps the endpoint alive).
	wanted := []string{
		"# TYPE transport_frames_out_total counter",
		"transport_connected_peers",
		"runtime_sessions_active",
		"# TYPE acs_slot_commit_seconds histogram",
		"acs_slot_commit_seconds_bucket{le=",
		"acs_fastpath_hits_total",
		"rbc_deliveries_total",
		"transport_messages_total",
	}
	var metrics string
	deadline = time.Now().Add(30 * time.Second)
	for {
		_, metrics = httpGet(t, base+"/metrics")
		missing := ""
		for _, w := range wanted {
			if !strings.Contains(metrics, w) {
				missing = w
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never exposed %q; last scrape:\n%s", missing, metrics)
		}
		time.Sleep(50 * time.Millisecond)
	}

	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", id, err)
		}
	}
	for id := 1; id < n; id++ {
		if outs[0].String() != outs[id].String() {
			t.Fatalf("ledger outputs differ between party 0 and party %d", id)
		}
	}

	// Phase 4: every party's -tracefile is valid Chrome-trace JSON with
	// paired slot spans.
	for id := 0; id < n; id++ {
		data, err := os.ReadFile(traceFile(id))
		if err != nil {
			t.Fatalf("party %d trace: %v", id, err)
		}
		var events []map[string]interface{}
		if err := json.Unmarshal(data, &events); err != nil {
			t.Fatalf("party %d trace is not valid Chrome-trace JSON: %v", id, err)
		}
		if len(events) == 0 {
			t.Fatalf("party %d trace is empty", id)
		}
		begins, ends := 0, 0
		for _, e := range events {
			if e["name"] == "slot" {
				switch e["ph"] {
				case "B":
					begins++
				case "E":
					ends++
				}
			}
		}
		if begins != slots || ends != slots {
			t.Fatalf("party %d trace: %d slot begins / %d ends, want %d each", id, begins, ends, slots)
		}
	}
}

// mustChanges parses a -submit spec or fails the test.
func mustChanges(t *testing.T, s string) []reconfig.ScheduledChange {
	t.Helper()
	chs, err := parseChanges(s)
	if err != nil {
		t.Fatal(err)
	}
	return chs
}

// TestParseChanges covers the -submit grammar.
func TestParseChanges(t *testing.T) {
	chs, err := parseChanges("2:+4@127.0.0.1:7004, 6:-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) != 2 || !chs[0].Change.Add || chs[0].Change.Party != 4 ||
		chs[0].Change.Addr != "127.0.0.1:7004" || chs[0].Slot != 2 ||
		chs[1].Change.Add || chs[1].Change.Party != 1 || chs[1].Slot != 6 {
		t.Fatalf("parsed %+v", chs)
	}
	for _, bad := range []string{"x", "2:4", "2:+x", "a:+4", "2:-1@addr"} {
		if _, err := parseChanges(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if got, err := parseChanges("  "); err != nil || got != nil {
		t.Fatalf("empty spec: %v %v", got, err)
	}
}
