// Command node runs ONE party of the protocol stack over real TCP sockets —
// one process per party, communicating via internal/transport. Start n
// processes with the same peer list and they will jointly execute the
// requested protocol.
//
// Example (4 parties, one terminal each):
//
//	node -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -t 1 -protocol coinflip -k 4
//	node -id 1 -peers ... (same list)
//	node -id 2 -peers ...
//	node -id 3 -peers ...
//
// Protocols: rbc (party 0 broadcasts -input), svss (party 0 deals -secret),
// ba (binary agreement on -bit), coinflip (strong common coin, -k rounds).
//
// -batch K runs K independent instances of the selected protocol
// concurrently over the same TCP transport, multiplexed by session
// namespacing (internal/batch) — the pipeline that keeps the sockets full
// instead of paying full protocol latency K times. All processes must use
// the same -batch value.
//
// -mode abc switches the node to ACS-based atomic broadcast (internal/acs):
// every party contributes one batch per slot (derived from -input), -slots
// slots pipeline -width wide, and the node prints the replicated ledger
// plus its SHA-256 digest — identical at every party, which is the whole
// point. All processes must use the same -slots and -width values. Batches
// of at least rbc.DefaultCodedThreshold bytes are A-Cast via erasure-coded
// dispersal (fragments + digest); -no-coded forces classic full-value echo
// for this node's own proposals (the flag is sender-local — mixed
// configurations interoperate and still replicate identically).
//
// In -mode abc every node also runs a snapshot server (internal/
// statesync): it serves digest-chain-verified ledger ranges out of its
// slot store, concurrently with the live slots. -resume R turns the node
// into a restarted replica: it skips slots [0, R) entirely, catches them
// up via state transfer from its peers (verifying every chunk against a
// t+1-agreed digest head), participates live in slots [R, slots), and
// prints the same bit-identical ledger as everyone else. -grace tunes how
// long a finished node lingers to serve slower or catching-up peers.
//
// -shards S switches -mode abc to the sharded serving plane (internal/
// shard): S independent ledger shards run over the node's one transport,
// and -serve addr opens a client-facing HTTP front door. Clients POST
// /submit?stream=ID with the payload as the body; the op routes to a
// shard by a deterministic hash of its stream id, rides that shard's
// next slot, and the response is its committed (shard, slot, index)
// position — identical at every party. -queue bounds the per-shard
// admission queue; a full queue answers 429 immediately. All processes
// must use the same -shards, -slots and -width values; -serve and
// -queue are node-local.
//
// -members switches -mode abc to dynamic membership (internal/reconfig):
// the ledger starts on the listed genesis subset of the peer universe and
// evolves via membership operations committed on the ledger itself. A node
// whose id is outside -members is a joiner: it bootstraps the committed
// prefix via state transfer and enters the member set when a committed
// AddParty operation activates. -submit schedules operations this node
// proposes ("slot:+party@addr" adds, "slot:-party" removes, comma-
// separated); -retire N is shorthand for proposing this node's own removal
// at slot N. The @addr of an add is gossiped on the ledger, so existing
// members learn a joiner's endpoint when the operation commits (they may
// leave its slot in -peers empty) — the transport adds the peer on commit.
// All nodes must agree on -members, -slots and -lag; -submit/-retire may
// differ per node, since the committed ledger, not the flag, is what every
// replica folds into the epoch schedule. Commitment orders an operation
// but does not authorize it: the schedule applies an operation only when
// the committed entries of one slot carry it from ≥ t+1 distinct members,
// so operators must -submit the same operation (same slot, same op; the
// @addr may vary) on at least t+1 member nodes — 2t+1 to be safe, since a
// slot's committed entries can omit up to t contributors. A lone -submit
// is harmless and inert, which is exactly what makes a Byzantine member's
// forged operation inert too.
//
// -mode mpc switches the node to secure circuit evaluation (internal/mpc):
// every party contributes one private input (-x, never revealed) and the
// cluster jointly evaluates the private-statistics circuit — sum and
// n²·variance of the contributed inputs — opening only the two aggregates,
// which print identically at every party.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"asyncft/internal/acs"
	"asyncft/internal/ba"
	"asyncft/internal/batch"
	"asyncft/internal/core"
	"asyncft/internal/field"
	"asyncft/internal/mpc"
	"asyncft/internal/obs"
	"asyncft/internal/rbc"
	"asyncft/internal/reconfig"
	"asyncft/internal/runtime"
	"asyncft/internal/statesync"
	"asyncft/internal/svss"
	"asyncft/internal/trace"
	"asyncft/internal/transport"
)

// options collects every flag so the node body is callable from tests.
type options struct {
	id       int
	peers    []string
	t        int
	mode     string
	protocol string
	input    string
	secret   uint64
	x        uint64
	bit      int
	k        int
	batch    int
	slots    int
	width    int
	resume   int
	shards   int
	serve    string
	queue    int
	noCoded  bool
	fastPath bool
	bca      bool
	agTrace  bool
	seed     int64
	timeout  time.Duration
	grace    time.Duration

	// Observability: obsAddr serves /metrics, /healthz, /readyz and
	// net/http/pprof on the given address ("" = disabled); traceFile dumps
	// the run's slot-lifecycle spans as Chrome-trace JSON on exit.
	obsAddr   string
	traceFile string

	// Dynamic membership (-mode abc only): members is the genesis set
	// (empty = static run), submits the operations this node proposes,
	// retire the slot at which it proposes its own removal (0 = never),
	// lag the activation delay (0 = the reconfig default).
	members []int
	submits []reconfig.ScheduledChange
	retire  int
	lag     int
	pace    time.Duration
}

func main() {
	id := flag.Int("id", 0, "this party's index")
	peers := flag.String("peers", "", "comma-separated host:port for parties 0..n-1")
	tf := flag.Int("t", 1, "fault tolerance (3t+1 ≤ n)")
	mode := flag.String("mode", "proto", "proto (single-protocol instances) | abc (atomic broadcast ledger) | mpc (secure circuit evaluation)")
	protocol := flag.String("protocol", "coinflip", "rbc | svss | ba | coinflip")
	input := flag.String("input", "hello", "rbc: value broadcast by party 0; abc: batch prefix")
	secret := flag.Uint64("secret", 42, "svss: secret dealt by party 0")
	x := flag.Uint64("x", 0, "mpc: this party's private input (0 = derived from id)")
	bit := flag.Int("bit", 0, "ba: this party's input bit")
	k := flag.Int("k", 2, "coinflip: coin rounds")
	batchK := flag.Int("batch", 1, "concurrent protocol instances pipelined over the transport (same value at every party)")
	slots := flag.Int("slots", 4, "abc: number of atomic-broadcast slots (same value at every party)")
	width := flag.Int("width", 0, "abc: slots in flight at once (0 = all; same value at every party)")
	noCoded := flag.Bool("no-coded", false, "abc: disable erasure-coded A-Cast dispersal (classic full-value echo)")
	fastPath := flag.Bool("fastpath", false, "abc: unanimous-slot fast path — commit the full contributor set after one confirmation round when all n A-Casts deliver (same value at every party; implies -bca, whose unanimous-input validity the fallback requires)")
	bca := flag.Bool("bca", false, "abc: BCA-based binary agreement rounds with AUX→VAL vote reuse (same value at every party)")
	agTrace := flag.Bool("agreetrace", false, "abc: dump per-slot agreement milestones (fast commits, fallbacks, rounds) after the ledger")
	resume := flag.Int("resume", 0, "abc: restarted-replica mode — skip slots [0,resume), catch them up via state transfer from peers, then join live slots")
	shards := flag.Int("shards", 0, "abc: run this many independent ledger shards over the shared transport, fed via -serve (0 = unsharded; same value at every party)")
	serve := flag.String("serve", "", "abc sharded: client front door address (host:port) serving POST /submit and GET /log (empty = disabled)")
	queue := flag.Int("queue", 0, "abc sharded: per-shard admission queue capacity; a full queue answers 429 (0 = default)")
	members := flag.String("members", "", "abc: comma-separated genesis member ids — enables dynamic membership (same value at every node)")
	submit := flag.String("submit", "", "abc dynamic: membership ops to propose, e.g. 2:+4@127.0.0.1:7004,6:-1")
	retire := flag.Int("retire", 0, "abc dynamic: propose this node's own removal at the given slot (0 = never)")
	lagFlag := flag.Int("lag", 0, "abc dynamic: activation delay in slots for committed ops (0 = default)")
	pace := flag.Duration("pace", 0, "abc dynamic: minimum delay between this node's slot proposals — throttles the ledger so joiners and observers keep up (0 = full speed)")
	obsAddr := flag.String("obs", "", "operational HTTP endpoint address (host:port) serving /metrics, /healthz, /readyz and /debug/pprof (empty = disabled)")
	traceFile := flag.String("tracefile", "", "write the run's slot-lifecycle spans as Chrome-trace JSON to this file (load via chrome://tracing or Perfetto)")
	seed := flag.Int64("seed", 0, "randomness seed (default: derived from id)")
	timeout := flag.Duration("timeout", 2*time.Minute, "protocol deadline")
	grace := flag.Duration("grace", 500*time.Millisecond, "linger after completion so helper goroutines can serve slower peers (0 = the 500ms default, negative = exit immediately)")
	flag.Parse()

	o := options{
		id: *id, t: *tf, mode: *mode, protocol: *protocol, input: *input,
		secret: *secret, x: *x, bit: *bit, k: *k, batch: *batchK, slots: *slots,
		width: *width, resume: *resume, noCoded: *noCoded,
		shards: *shards, serve: *serve, queue: *queue,
		fastPath: *fastPath, bca: *bca, agTrace: *agTrace, seed: *seed,
		timeout: *timeout, grace: *grace, retire: *retire, lag: *lagFlag,
		pace: *pace, obsAddr: *obsAddr, traceFile: *traceFile,
	}
	for _, a := range strings.Split(*peers, ",") {
		o.peers = append(o.peers, strings.TrimSpace(a))
	}
	var err error
	if o.members, err = parseMembers(*members); err != nil {
		log.Fatal(err)
	}
	if o.submits, err = parseChanges(*submit); err != nil {
		log.Fatal(err)
	}
	if err := runNode(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// obsState carries the node's observability plane across the mode
// runners: the shared metrics registry (nil when -obs is off), the span
// recorder (nil when -tracefile is off), and the state-transfer readiness
// the /readyz probe folds in when the node is resuming.
type obsState struct {
	reg *obs.Registry
	rec *trace.Recorder

	// syncStore/syncTarget are set by runLedger before state transfer
	// starts: /readyz stays 503 until the store's contiguous prefix
	// reaches the resume target.
	syncStore  atomic.Pointer[acs.Store]
	syncTarget int
}

// runNode executes one party end to end and writes its outputs to out. It
// is the whole node behind the flags, factored out so the e2e test can run
// n parties in-process over loopback TCP.
func runNode(o options, out io.Writer) error {
	n := len(o.peers)
	if n < 3*o.t+1 {
		return fmt.Errorf("need n ≥ 3t+1 peers, got n=%d t=%d", n, o.t)
	}
	if o.id < 0 || o.id >= n {
		return fmt.Errorf("id %d out of range for %d peers", o.id, n)
	}
	if o.batch < 1 {
		return fmt.Errorf("-batch must be ≥ 1, got %d", o.batch)
	}
	if o.mode != "proto" && o.mode != "abc" && o.mode != "mpc" {
		return fmt.Errorf("unknown mode %q (want proto, abc or mpc)", o.mode)
	}
	addrs := map[int]string{}
	for i, a := range o.peers {
		addrs[i] = a
	}
	if o.seed == 0 {
		o.seed = int64(o.id + 1)
	}

	node := runtime.NewNode(o.id, n, o.t)
	tcp, err := transport.Listen(o.id, addrs, node.Dispatch)
	if err != nil {
		return err
	}
	defer tcp.Close()
	defer node.Close()
	env := runtime.NewEnv(o.id, n, o.t, node, tcp, o.seed)

	ob := &obsState{}
	if o.traceFile != "" {
		ob.rec = trace.New(64 * 1024)
	}
	if o.obsAddr != "" {
		ob.reg = obs.NewRegistry()
		tcp.Instrument(ob.reg)
		node.Instrument(ob.reg)
		ready := func() error {
			if got, need := tcp.ConnectedPeers()+1, n-o.t; got < need {
				return fmt.Errorf("connected to %d/%d parties (need %d)", got, n, need)
			}
			if st := ob.syncStore.Load(); st != nil && st.Next() < ob.syncTarget {
				return fmt.Errorf("state transfer at slot %d/%d", st.Next(), ob.syncTarget)
			}
			return nil
		}
		srv, err := obs.StartServer(o.obsAddr, obs.ServerOptions{Registry: ob.reg, Ready: ready})
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer srv.Close()
		log.Printf("party %d observability on http://%s (/metrics /healthz /readyz /debug/pprof)", o.id, srv.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()

	start := time.Now()
	switch o.mode {
	case "abc":
		if err := runLedger(ctx, env, o, ob, out); err != nil {
			return err
		}
	case "mpc":
		if err := runMPC(ctx, env, o, ob, out); err != nil {
			return err
		}
	default:
		if err := runProtocol(ctx, env, o, out); err != nil {
			return err
		}
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		if err := ob.rec.WriteChrome(f); err != nil {
			f.Close()
			return fmt.Errorf("tracefile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		log.Printf("party %d wrote %d trace events to %s", o.id, ob.rec.Len(), o.traceFile)
	}
	log.Printf("party %d completed in %v", o.id, time.Since(start).Round(time.Millisecond))
	// Give lingering helper goroutines a beat (and snapshot servers a
	// window) to serve slower or catching-up peers before tearing down.
	// Zero means the 500ms default; negative disables the linger.
	grace := o.grace
	if grace == 0 {
		grace = 500 * time.Millisecond
	}
	if grace > 0 {
		time.Sleep(grace)
	}
	return nil
}

// runLedger is -mode abc: the ACS-based atomic broadcast ledger. Every
// node records its slots into an acs.Store and serves digest-verified
// snapshots from it over the transport, so restarted replicas (-resume R)
// can catch up [0, R) via internal/statesync while participating live in
// the remaining slots — and still print the bit-identical ledger.
func runLedger(ctx context.Context, env *runtime.Env, o options, ob *obsState, out io.Writer) error {
	if o.slots < 1 {
		return fmt.Errorf("-slots must be ≥ 1, got %d", o.slots)
	}
	if o.resume < 0 || o.resume >= o.slots {
		return fmt.Errorf("-resume must be in [0, slots), got %d", o.resume)
	}
	cfg := core.Config{K: o.k, Eps: 0.1, InnerCoin: core.InnerCoinLocal}
	if o.noCoded {
		cfg.RBC.CodedThreshold = -1
	}
	cfg.FastPath = o.fastPath
	cfg.BA.UseBCA = o.bca
	cfg.Metrics = ob.reg
	// Agreement-core observability: rounds per decision and fast-path hit
	// rate. These are per-party (a resumed replica runs fewer slots live),
	// so they go to the log, keeping stdout bit-identical across parties.
	cfg.Stats = &core.AgreementStats{}
	rec := ob.rec
	if rec == nil {
		rec = trace.New(4 * o.slots)
	}
	cfg.Trace = rec
	printAgreement := func() {
		log.Printf("party %d agreement: %s", env.ID, cfg.Stats.String())
		if o.agTrace {
			rec.Dump(os.Stderr)
		}
	}
	const sess = "node/abc"
	if o.shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0, got %d", o.shards)
	}
	if o.shards > 0 {
		if len(o.members) > 0 || o.resume > 0 {
			return fmt.Errorf("-shards is incompatible with -members and -resume")
		}
		return runShardedLedger(ctx, env, o, sess, cfg, printAgreement, out)
	}
	if o.serve != "" || o.queue != 0 {
		return fmt.Errorf("-serve and -queue require -shards")
	}
	if len(o.members) > 0 {
		return runDynamicLedger(ctx, env, o, sess, cfg, printAgreement, out)
	}
	store := acs.NewStore()
	if o.resume > 0 {
		// /readyz additionally waits for the missed prefix to install.
		ob.syncTarget = o.resume
		ob.syncStore.Store(store)
	}
	syncOpts := statesync.Options{Metrics: ob.reg}
	go statesync.Serve(ctx, env, sess, store, syncOpts)
	input := func(slot int) []byte {
		return []byte(fmt.Sprintf("%s/p%d/s%d", o.input, env.ID, slot))
	}
	log.Printf("party %d/%d on %s: atomic broadcast, %d slot(s) width %d coded=%v resume=%d",
		env.ID, env.N, addrOf(env), o.slots, o.width, !o.noCoded, o.resume)
	if o.resume > 0 {
		// Restarted replica: catch up the missed prefix and run the live
		// slots concurrently; both must finish before the ledger prints.
		if err := statesync.Resume(ctx, ctx, env, sess, store, o.resume, o.slots, o.width, input, cfg, syncOpts); err != nil {
			return err
		}
	} else if err := acs.RunFrom(ctx, ctx, env, sess, 0, o.slots, o.width, input, cfg, store); err != nil {
		return err
	}
	ledger := store.Ledger()
	for i, e := range ledger {
		fmt.Fprintf(out, "ledger[%d] slot=%d party=%d payload=%q\n", i, e.Slot, e.Party, e.Payload)
	}
	printAgreement()
	fmt.Fprintf(out, "ledger digest: %x (%d entries)\n", acs.Digest(ledger), len(ledger))
	return nil
}

// runDynamicLedger is -mode abc with -members: the dynamic-membership
// ledger (internal/reconfig). The node plays whatever role the committed
// schedule assigns it — genesis member, joiner, observer, or removed
// party following the ledger to the end — and prints the same listing,
// digest and final member set as every other node. Committed AddParty
// operations that carry an address feed the transport's peer table, which
// is how existing members learn a joiner's endpoint mid-run.
func runDynamicLedger(ctx context.Context, env *runtime.Env, o options, sess string, cfg core.Config, printAgreement func(), out io.Writer) error {
	src := reconfig.NewSource(o.submits...)
	if o.retire > 0 {
		src.Schedule(reconfig.ScheduledChange{
			Slot:   o.retire,
			Change: reconfig.Change{Add: false, Party: env.ID},
		})
	}
	tcp, _ := env.Net.(*transport.TCP)
	log.Printf("party %d/%d on %s: dynamic-membership ledger, genesis %v, %d slot(s) lag %d",
		env.ID, env.N, addrOf(env), o.members, o.slots, o.lag)
	res, err := reconfig.Run(ctx, ctx, env, reconfig.Options{
		Session: sess,
		Genesis: o.members,
		Lag:     o.lag,
		Slots:   o.slots,
		Width:   o.width,
		Input: func(slot int) []byte {
			if o.pace > 0 {
				time.Sleep(o.pace) // throttle admission so late joiners catch the live frontier
			}
			return []byte(fmt.Sprintf("%s/p%d/s%d", o.input, env.ID, slot))
		},
		Core:   cfg,
		Source: src,
		// A joiner's very first head request races the commit that teaches
		// the members its address; re-ask well under a slot interval so the
		// lost request costs milliseconds, not the whole run.
		Sync: statesync.Options{HeadRetry: 100 * time.Millisecond, Metrics: cfg.Metrics},
		OnChange: func(ch reconfig.Change, slot int) {
			if ch.Add && ch.Addr != "" && tcp != nil {
				tcp.AddPeer(ch.Party, ch.Addr)
			}
		},
	})
	if err != nil {
		return err
	}
	if res.JoinedAt >= 0 {
		log.Printf("party %d joined the member set at slot %d", env.ID, res.JoinedAt)
	}
	if res.RemovedAt >= 0 {
		log.Printf("party %d left the member set at slot %d (following as observer)", env.ID, res.RemovedAt)
	}
	for i, e := range res.Ledger {
		fmt.Fprintf(out, "ledger[%d] slot=%d party=%d payload=%q\n", i, e.Slot, e.Party, e.Payload)
	}
	printAgreement()
	fmt.Fprintf(out, "ledger digest: %x (%d entries)\n", acs.Digest(res.Ledger), len(res.Ledger))
	fmt.Fprintf(out, "final members: %v (%d epochs)\n", res.FinalMembers, res.Epochs)
	return nil
}

// parseMembers parses the -members genesis list ("0,1,2,3"; empty = static).
func parseMembers(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &id); err != nil {
			return nil, fmt.Errorf("-members: bad id %q", part)
		}
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

// parseChanges parses the -submit operation list: comma-separated items of
// the form "slot:+party@addr" (add, @addr optional) or "slot:-party".
func parseChanges(s string) ([]reconfig.ScheduledChange, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []reconfig.ScheduledChange
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		slotStr, opStr, ok := strings.Cut(item, ":")
		if !ok || opStr == "" {
			return nil, fmt.Errorf("-submit: bad op %q (want slot:+party@addr or slot:-party)", item)
		}
		var slot int
		if _, err := fmt.Sscanf(slotStr, "%d", &slot); err != nil {
			return nil, fmt.Errorf("-submit: bad slot in %q", item)
		}
		add := opStr[0] == '+'
		if !add && opStr[0] != '-' {
			return nil, fmt.Errorf("-submit: op %q must start with + or -", item)
		}
		partyStr, addr, _ := strings.Cut(opStr[1:], "@")
		var party int
		if _, err := fmt.Sscanf(partyStr, "%d", &party); err != nil {
			return nil, fmt.Errorf("-submit: bad party in %q", item)
		}
		if !add && addr != "" {
			return nil, fmt.Errorf("-submit: removal %q cannot carry an address", item)
		}
		out = append(out, reconfig.ScheduledChange{
			Slot:   slot,
			Change: reconfig.Change{Add: add, Party: party, Addr: addr},
		})
	}
	return out, nil
}

// runMPC is -mode mpc: secure evaluation of the private-statistics
// circuit (internal/mpc.VarianceCircuit) over real TCP. Every party
// contributes one private input (-x); the cluster opens only the two
// aggregates [Σx, n·Σx² − (Σx)²], identical at every party, from which
// mean and variance derive publicly.
func runMPC(ctx context.Context, env *runtime.Env, o options, ob *obsState, out io.Writer) error {
	cfg := core.Config{K: o.k, Eps: 0.1, InnerCoin: core.InnerCoinLocal, Metrics: ob.reg, Trace: ob.rec}
	x := o.x
	if x == 0 {
		x = uint64(3*o.id + 2)
	}
	log.Printf("party %d/%d on %s: mpc variance circuit, private input %d", env.ID, env.N, addrOf(env), x)
	ckt := mpc.VarianceCircuit(env.N)
	res, err := mpc.Evaluate(ctx, ctx, env, "node/mpc", ckt, []field.Elem{field.New(x)}, cfg, mpc.Options{Width: o.width})
	if err != nil {
		return err
	}
	sum := res.Outputs[0].Uint64()
	scaled := res.Outputs[1].Uint64() // n²·Var over the contributed inputs
	fmt.Fprintf(out, "mpc contributors: %v\n", res.Contributors)
	fmt.Fprintf(out, "mpc sum(x) = %d\n", sum)
	fmt.Fprintf(out, "mpc n²·var(x) = %d\n", scaled)
	n2 := float64(env.N) * float64(env.N)
	fmt.Fprintf(out, "mpc mean = %.4f variance = %.4f (over %d contributed inputs, absentees as 0)\n",
		float64(sum)/float64(env.N), float64(scaled)/n2, len(res.Contributors))
	return nil
}

// runProtocol is -mode proto: -batch K instances of one protocol.
func runProtocol(ctx context.Context, env *runtime.Env, o options, out io.Writer) error {
	// One instance body per protocol; -batch builds K of them on
	// namespaced sessions and pipelines them over the single transport.
	mkInstance := func(sess string) (batch.Instance, error) {
		switch o.protocol {
		case "rbc":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				var in []byte
				if env.ID == 0 {
					in = []byte(o.input)
				}
				v, err := rbc.Run(ctx, env, sess, 0, in)
				return fmt.Sprintf("delivered: %q", v), err
			}}, nil
		case "svss":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				sh, err := svss.RunShare(ctx, env, sess, 0, field.New(o.secret))
				if err != nil {
					return nil, fmt.Errorf("share: %w", err)
				}
				v, err := svss.RunRec(ctx, env, sh, svss.Options{})
				if err != nil {
					return nil, err
				}
				return fmt.Sprintf("reconstructed: %d", v.Uint64()), nil
			}}, nil
		case "ba":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				v, err := ba.Run(ctx, env, sess, byte(o.bit&1), ba.LocalCoin(env), ba.Options{})
				return fmt.Sprintf("agreed: %d", v), err
			}}, nil
		case "coinflip":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				cfg := core.Config{K: o.k, Eps: 0.1, InnerCoin: core.InnerCoinLocal}
				v, err := core.CoinFlip(ctx, ctx, env, sess, cfg)
				return fmt.Sprintf("coin: %d", v), err
			}}, nil
		default:
			return batch.Instance{}, fmt.Errorf("unknown protocol %q", o.protocol)
		}
	}

	// Session roots match the pre-batch wire format ("node/cf" for the
	// coin), so a -batch 1 run interoperates with older binaries.
	root := "node/" + o.protocol
	if o.protocol == "coinflip" {
		root = "node/cf"
	}
	instances := make([]batch.Instance, o.batch)
	for i := range instances {
		sess := root
		if o.batch > 1 {
			sess = fmt.Sprintf("%s/%d", root, i)
		}
		inst, err := mkInstance(sess)
		if err != nil {
			return err
		}
		instances[i] = inst
	}

	log.Printf("party %d/%d on %s: running %s ×%d", env.ID, env.N, addrOf(env), o.protocol, o.batch)
	res, err := batch.Run(ctx, map[int]*runtime.Env{env.ID: env}, instances, batch.Options{})
	if err != nil {
		return fmt.Errorf("batch setup: %w", err)
	}
	for i, m := range res {
		r := m[env.ID]
		if r.Err != nil {
			return fmt.Errorf("instance %s failed: %w", instances[i].Session, r.Err)
		}
		fmt.Fprintf(out, "[%s] %v\n", instances[i].Session, r.Value)
	}
	return nil
}

// addrOf names the transport endpoint for logs (best effort).
func addrOf(env *runtime.Env) string {
	if t, ok := env.Net.(*transport.TCP); ok {
		return t.Addr()
	}
	return "?"
}
