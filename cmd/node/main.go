// Command node runs ONE party of the protocol stack over real TCP sockets —
// one process per party, communicating via internal/transport. Start n
// processes with the same peer list and they will jointly execute the
// requested protocol.
//
// Example (4 parties, one terminal each):
//
//	node -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -t 1 -protocol coinflip -k 4
//	node -id 1 -peers ... (same list)
//	node -id 2 -peers ...
//	node -id 3 -peers ...
//
// Protocols: rbc (party 0 broadcasts -input), svss (party 0 deals -secret),
// ba (binary agreement on -bit), coinflip (strong common coin, -k rounds).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"asyncft/internal/ba"
	"asyncft/internal/core"
	"asyncft/internal/field"
	"asyncft/internal/rbc"
	"asyncft/internal/runtime"
	"asyncft/internal/svss"
	"asyncft/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "this party's index")
	peers := flag.String("peers", "", "comma-separated host:port for parties 0..n-1")
	tf := flag.Int("t", 1, "fault tolerance (3t+1 ≤ n)")
	protocol := flag.String("protocol", "coinflip", "rbc | svss | ba | coinflip")
	input := flag.String("input", "hello", "rbc: value broadcast by party 0")
	secret := flag.Uint64("secret", 42, "svss: secret dealt by party 0")
	bit := flag.Int("bit", 0, "ba: this party's input bit")
	k := flag.Int("k", 2, "coinflip: coin rounds")
	seed := flag.Int64("seed", 0, "randomness seed (default: derived from id)")
	timeout := flag.Duration("timeout", 2*time.Minute, "protocol deadline")
	flag.Parse()

	addrList := strings.Split(*peers, ",")
	n := len(addrList)
	if n < 3**tf+1 {
		log.Fatalf("need n ≥ 3t+1 peers, got n=%d t=%d", n, *tf)
	}
	if *id < 0 || *id >= n {
		log.Fatalf("id %d out of range for %d peers", *id, n)
	}
	addrs := map[int]string{}
	for i, a := range addrList {
		addrs[i] = strings.TrimSpace(a)
	}
	if *seed == 0 {
		*seed = int64(*id + 1)
	}

	node := runtime.NewNode(*id, n, *tf)
	tcp, err := transport.Listen(*id, addrs, node.Dispatch)
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	defer node.Close()
	env := runtime.NewEnv(*id, n, *tf, node, tcp, *seed)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	log.Printf("party %d/%d listening on %s, running %s", *id, n, tcp.Addr(), *protocol)
	start := time.Now()
	switch *protocol {
	case "rbc":
		var in []byte
		if *id == 0 {
			in = []byte(*input)
		}
		out, err := rbc.Run(ctx, env, "node/rbc", 0, in)
		report(err, start)
		fmt.Printf("delivered: %q\n", out)
	case "svss":
		sh, err := svss.RunShare(ctx, env, "node/svss", 0, field.New(*secret))
		if err != nil {
			log.Fatalf("share: %v", err)
		}
		v, err := svss.RunRec(ctx, env, sh, svss.Options{})
		report(err, start)
		fmt.Printf("reconstructed: %d\n", v.Uint64())
	case "ba":
		out, err := ba.Run(ctx, env, "node/ba", byte(*bit&1), ba.LocalCoin(env), ba.Options{})
		report(err, start)
		fmt.Printf("agreed: %d\n", out)
	case "coinflip":
		cfg := core.Config{K: *k, Eps: 0.1, InnerCoin: core.InnerCoinLocal}
		out, err := core.CoinFlip(ctx, ctx, env, "node/cf", cfg)
		report(err, start)
		fmt.Printf("coin: %d\n", out)
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}
	// Give lingering helper goroutines a beat to flush their final sends so
	// slower peers can finish too.
	time.Sleep(500 * time.Millisecond)
}

func report(err error, start time.Time) {
	if err != nil {
		log.Fatalf("protocol failed: %v", err)
	}
	log.Printf("completed in %v", time.Since(start).Round(time.Millisecond))
}
