// Command node runs ONE party of the protocol stack over real TCP sockets —
// one process per party, communicating via internal/transport. Start n
// processes with the same peer list and they will jointly execute the
// requested protocol.
//
// Example (4 parties, one terminal each):
//
//	node -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -t 1 -protocol coinflip -k 4
//	node -id 1 -peers ... (same list)
//	node -id 2 -peers ...
//	node -id 3 -peers ...
//
// Protocols: rbc (party 0 broadcasts -input), svss (party 0 deals -secret),
// ba (binary agreement on -bit), coinflip (strong common coin, -k rounds).
//
// -batch K runs K independent instances of the selected protocol
// concurrently over the same TCP transport, multiplexed by session
// namespacing (internal/batch) — the pipeline that keeps the sockets full
// instead of paying full protocol latency K times. All processes must use
// the same -batch value.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"asyncft/internal/ba"
	"asyncft/internal/batch"
	"asyncft/internal/core"
	"asyncft/internal/field"
	"asyncft/internal/rbc"
	"asyncft/internal/runtime"
	"asyncft/internal/svss"
	"asyncft/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "this party's index")
	peers := flag.String("peers", "", "comma-separated host:port for parties 0..n-1")
	tf := flag.Int("t", 1, "fault tolerance (3t+1 ≤ n)")
	protocol := flag.String("protocol", "coinflip", "rbc | svss | ba | coinflip")
	input := flag.String("input", "hello", "rbc: value broadcast by party 0")
	secret := flag.Uint64("secret", 42, "svss: secret dealt by party 0")
	bit := flag.Int("bit", 0, "ba: this party's input bit")
	k := flag.Int("k", 2, "coinflip: coin rounds")
	batchK := flag.Int("batch", 1, "concurrent protocol instances pipelined over the transport (same value at every party)")
	seed := flag.Int64("seed", 0, "randomness seed (default: derived from id)")
	timeout := flag.Duration("timeout", 2*time.Minute, "protocol deadline")
	flag.Parse()

	addrList := strings.Split(*peers, ",")
	n := len(addrList)
	if n < 3**tf+1 {
		log.Fatalf("need n ≥ 3t+1 peers, got n=%d t=%d", n, *tf)
	}
	if *id < 0 || *id >= n {
		log.Fatalf("id %d out of range for %d peers", *id, n)
	}
	if *batchK < 1 {
		log.Fatalf("-batch must be ≥ 1, got %d", *batchK)
	}
	addrs := map[int]string{}
	for i, a := range addrList {
		addrs[i] = strings.TrimSpace(a)
	}
	if *seed == 0 {
		*seed = int64(*id + 1)
	}

	node := runtime.NewNode(*id, n, *tf)
	tcp, err := transport.Listen(*id, addrs, node.Dispatch)
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	defer node.Close()
	env := runtime.NewEnv(*id, n, *tf, node, tcp, *seed)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// One instance body per protocol; -batch builds K of them on
	// namespaced sessions and pipelines them over the single transport.
	mkInstance := func(sess string) batch.Instance {
		switch *protocol {
		case "rbc":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				var in []byte
				if *id == 0 {
					in = []byte(*input)
				}
				out, err := rbc.Run(ctx, env, sess, 0, in)
				return fmt.Sprintf("delivered: %q", out), err
			}}
		case "svss":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				sh, err := svss.RunShare(ctx, env, sess, 0, field.New(*secret))
				if err != nil {
					return nil, fmt.Errorf("share: %w", err)
				}
				v, err := svss.RunRec(ctx, env, sh, svss.Options{})
				if err != nil {
					return nil, err
				}
				return fmt.Sprintf("reconstructed: %d", v.Uint64()), nil
			}}
		case "ba":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				out, err := ba.Run(ctx, env, sess, byte(*bit&1), ba.LocalCoin(env), ba.Options{})
				return fmt.Sprintf("agreed: %d", out), err
			}}
		case "coinflip":
			return batch.Instance{Session: sess, Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				cfg := core.Config{K: *k, Eps: 0.1, InnerCoin: core.InnerCoinLocal}
				out, err := core.CoinFlip(ctx, ctx, env, sess, cfg)
				return fmt.Sprintf("coin: %d", out), err
			}}
		default:
			log.Fatalf("unknown protocol %q", *protocol)
			return batch.Instance{}
		}
	}

	// Session roots match the pre-batch wire format ("node/cf" for the
	// coin), so a -batch 1 run interoperates with older binaries.
	root := "node/" + *protocol
	if *protocol == "coinflip" {
		root = "node/cf"
	}
	instances := make([]batch.Instance, *batchK)
	for i := range instances {
		sess := root
		if *batchK > 1 {
			sess = fmt.Sprintf("%s/%d", root, i)
		}
		instances[i] = mkInstance(sess)
	}

	log.Printf("party %d/%d listening on %s, running %s ×%d", *id, n, tcp.Addr(), *protocol, *batchK)
	start := time.Now()
	res, err := batch.Run(ctx, map[int]*runtime.Env{*id: env}, instances, batch.Options{})
	if err != nil {
		log.Fatalf("batch setup: %v", err)
	}
	for i, m := range res {
		r := m[*id]
		if r.Err != nil {
			log.Fatalf("instance %s failed: %v", instances[i].Session, r.Err)
		}
		fmt.Printf("[%s] %v\n", instances[i].Session, r.Value)
	}
	log.Printf("completed %d instance(s) in %v", *batchK, time.Since(start).Round(time.Millisecond))
	// Give lingering helper goroutines a beat to flush their final sends so
	// slower peers can finish too.
	time.Sleep(500 * time.Millisecond)
}
