package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"asyncft/internal/acs"
	"asyncft/internal/core"
	"asyncft/internal/runtime"
	"asyncft/internal/shard"
)

// runShardedLedger is -mode abc with -shards S: the node runs S
// independent ledger shards over its one transport (internal/shard) and,
// with -serve, opens a client-facing HTTP front door. Clients POST
// /submit?stream=ID with the payload as the request body; the handler
// routes the op to its shard (deterministic hash of the stream id),
// long-polls until the op commits, and acks with its (shard, slot,
// index) position as JSON — identical at every party. A full admission
// queue answers 429 immediately (backpressure, never a silent drop); an
// op that misses the run's final slot answers 503. GET /log streams the
// committed ops so far in the same deterministic format the node prints
// on exit.
func runShardedLedger(ctx context.Context, env *runtime.Env, o options, sess string, cfg core.Config, printAgreement func(), out io.Writer) error {
	eng, err := shard.New(env, shard.Options{
		Session:  sess,
		Shards:   o.shards,
		Slots:    o.slots,
		Width:    o.width,
		QueueCap: o.queue,
		Core:     cfg,
	})
	if err != nil {
		return err
	}
	log.Printf("party %d/%d on %s: sharded atomic broadcast, %d shard(s) × %d slot(s) width %d queue %d",
		env.ID, env.N, addrOf(env), o.shards, o.slots, o.width, o.queue)

	if o.serve != "" {
		ln, err := net.Listen("tcp", o.serve)
		if err != nil {
			return fmt.Errorf("serve endpoint: %w", err)
		}
		srv := &http.Server{Handler: serveMux(eng)}
		go func() { _ = srv.Serve(ln) }()
		log.Printf("party %d client front door on http://%s (/submit /log)", env.ID, ln.Addr())
		defer func() {
			// Let in-flight acks flush (the engine has already resolved
			// every pending submission by the time Run returns).
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	if err := eng.Run(ctx, ctx); err != nil {
		return err
	}
	for s := 0; s < o.shards; s++ {
		writeShardLog(out, eng, s)
		ledger := eng.Ledger(s)
		fmt.Fprintf(out, "shard[%d] digest: %x (%d entries)\n", s, acs.Digest(ledger), len(ledger))
	}
	printAgreement()
	return nil
}

// serveMux builds the client front door for one serving engine.
func serveMux(eng *shard.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		stream := r.URL.Query().Get("stream")
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, shard.MaxOpPayloadBytes))
		if err != nil {
			http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
			return
		}
		pos, err := eng.Submit(r.Context(), []byte(stream), payload)
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]int{
				"shard": pos.Shard, "slot": pos.Slot, "index": pos.Index,
			})
		case errors.Is(err, shard.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, shard.ErrUncommitted), errors.Is(err, shard.ErrFinished):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/log", func(w http.ResponseWriter, r *http.Request) {
		for s := 0; s < eng.Shards(); s++ {
			writeShardLog(w, eng, s)
		}
	})
	return mux
}

// writeShardLog prints one shard's committed ops, position by position —
// derived from committed bytes only, so the listing is bit-identical at
// every party (the e2e test's replication check).
func writeShardLog(w io.Writer, eng *shard.Engine, s int) {
	st := eng.Store(s)
	for k := 0; k < st.Next(); k++ {
		entries, ok := st.Slot(k)
		if !ok {
			return
		}
		for i, op := range shard.SlotOps(entries) {
			fmt.Fprintf(w, "shard[%d] slot=%d index=%d origin=%d seq=%d stream=%q payload=%q\n",
				s, k, i, op.Origin, op.Seq, op.Stream, op.Payload)
		}
	}
}
