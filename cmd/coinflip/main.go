// Command coinflip runs the paper's strong common coin (Algorithm 1) from
// the command line: a cluster of n simulated parties flips the coin
// repeatedly and the tool reports the outcome distribution, agreement, and
// traffic statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"asyncft"
)

func main() {
	n := flag.Int("n", 4, "number of parties")
	t := flag.Int("t", 1, "fault tolerance (3t+1 ≤ n)")
	k := flag.Int("k", 4, "coin rounds per flip (0 = the paper's PaperK constant — enormous)")
	flips := flag.Int("flips", 8, "number of coin flips")
	seed := flag.Int64("seed", 1, "base seed")
	weak := flag.Bool("weakcoin", false, "drive inner BAs with the SVSS weak coin (faithful, slower)")
	flag.Parse()

	coin := asyncft.CoinLocal
	if *weak {
		coin = asyncft.CoinWeak
	}
	ones := 0
	start := time.Now()
	var lastMetrics asyncft.MetricsSnapshot
	for f := 0; f < *flips; f++ {
		cluster, err := asyncft.New(asyncft.Config{
			N: *n, T: *t, Seed: *seed + int64(f),
			Coin: coin, CoinRounds: *k, Eps: 0.1,
			Timeout: 5 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		bit, err := cluster.CoinFlip(asyncft.SubSession("flip", f))
		if err != nil {
			log.Fatalf("flip %d: %v", f, err)
		}
		lastMetrics = cluster.Metrics()
		cluster.Close()
		ones += int(bit)
		fmt.Printf("flip %2d: %d\n", f, bit)
	}
	fmt.Printf("\nones: %d/%d (Pr[1] = %.3f, guarantee: ≥ 1/2 − ε per outcome at k = PaperK)\n",
		ones, *flips, float64(ones)/float64(*flips))
	fmt.Printf("elapsed: %v; last flip traffic: %d messages, %d bytes\n",
		time.Since(start).Round(time.Millisecond), lastMetrics.Messages, lastMetrics.Bytes)
}
