package main

import (
	"io"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: asyncft
BenchmarkE10BatchThroughput-8      	       1	 180000000 ns/op	         5.500 batched_speedup_over_sequential_shared_cluster
BenchmarkE10BatchThroughput-8      	       1	 190000000 ns/op	         5.100 batched_speedup_over_sequential_shared_cluster
BenchmarkE11LedgerThroughput-8     	       1	 250000000 ns/op	         4.400 pipelined_speedup_over_slot-at-a-time_K8
PASS
ok  	asyncft	1.2s
pkg: asyncft/internal/field
BenchmarkDomainInterpolate-8       	     100	      1500 ns/op
BenchmarkDomainInterpolate-8       	     100	      1400 ns/op
BenchmarkDomainInterpolate-8       	     100	      1600 ns/op
ok  	asyncft/internal/field	0.5s
`

func TestParse(t *testing.T) {
	m, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(m), m)
	}
	e10 := m["BenchmarkE10BatchThroughput"]
	if !e10.HigherIsBetter || e10.Value != 5.5 || e10.Runs != 2 {
		t.Fatalf("E10 metric wrong: %+v", e10)
	}
	if !strings.Contains(e10.Unit, "speedup") {
		t.Fatalf("E10 kept unit %q, want the custom speedup metric", e10.Unit)
	}
	dom := m["BenchmarkDomainInterpolate"]
	if dom.HigherIsBetter || dom.Unit != "ns/op" || dom.Value != 1400 || dom.Runs != 3 {
		t.Fatalf("DomainInterpolate metric wrong: %+v", dom)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	m, err := Parse(strings.NewReader("hello\nBenchmarkBroken-8 notanint 12 ns/op\nBenchmark 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("garbage parsed as benchmarks: %v", m)
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]Metric{
		"Rate":   {Unit: "flips/s", Value: 100, HigherIsBetter: true},
		"Time":   {Unit: "ns/op", Value: 1000},
		"Gone":   {Unit: "ns/op", Value: 10},
		"Units":  {Unit: "ns/op", Value: 10},
		"Steady": {Unit: "ns/op", Value: 1000},
	}
	cand := map[string]Metric{
		"Rate":   {Unit: "flips/s", Value: 60, HigherIsBetter: true}, // -40% rate: regression
		"Time":   {Unit: "ns/op", Value: 1400},                       // +40% time: regression
		"Units":  {Unit: "flips/s", Value: 10, HigherIsBetter: true},
		"Steady": {Unit: "ns/op", Value: 1200}, // +20%: within threshold
		"New":    {Unit: "ns/op", Value: 5},
	}
	var sb strings.Builder
	if got := Compare(&sb, base, cand, 0.30); got != 4 {
		t.Fatalf("Compare found %d regressions, want 4 (rate drop, time rise, missing, unit change):\n%s", got, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"FAIL Rate", "FAIL Time", "FAIL Gone", "FAIL Units", "ok   Steady", "new  New"} {
		if !strings.Contains(out, want) {
			t.Fatalf("verdict table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	base := map[string]Metric{
		"Rate": {Unit: "flips/s", Value: 100, HigherIsBetter: true},
		"Time": {Unit: "ns/op", Value: 1000},
	}
	cand := map[string]Metric{
		"Rate": {Unit: "flips/s", Value: 500, HigherIsBetter: true},
		"Time": {Unit: "ns/op", Value: 100},
	}
	var sb strings.Builder
	if got := Compare(&sb, base, cand, 0.30); got != 0 {
		t.Fatalf("improvements flagged as regressions:\n%s", sb.String())
	}
}

func TestHigherIsBetterClassification(t *testing.T) {
	cases := map[string]bool{
		"ns/op":                                  false,
		"B/op":                                   false,
		"flips/s":                                true,
		"entries/s":                              true,
		"batched_speedup_over_sequential":        true,
		"per-party_bandwidth_reduction_at_64KiB": true,
	}
	for unit, want := range cases {
		if got := higherIsBetter(unit); got != want {
			t.Fatalf("higherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestSummaryCoversEveryGatedMetric(t *testing.T) {
	base := map[string]Metric{
		"Rate":   {Unit: "flips/s", Value: 100, HigherIsBetter: true},
		"Gone":   {Unit: "ns/op", Value: 10},
		"Units":  {Unit: "ns/op", Value: 10},
		"Steady": {Unit: "ns/op", Value: 1000},
	}
	cand := map[string]Metric{
		"Rate":   {Unit: "flips/s", Value: 60, HigherIsBetter: true},
		"Units":  {Unit: "flips/s", Value: 10, HigherIsBetter: true},
		"Steady": {Unit: "ns/op", Value: 1200},
		"New":    {Unit: "ns/op", Value: 5},
	}
	var sb strings.Builder
	Summary(&sb, base, cand, 0.30)
	out := sb.String()
	// One table row per gated metric, each carrying the same verdict the
	// plain-text gate printed.
	for _, want := range []string{
		"| benchmark | baseline | candidate | unit | delta | verdict |",
		"| Rate | 100 | 60 | flips/s | -40.0% | FAIL |",
		"| Gone | 10 | — | ns/op | — | FAIL — missing from candidate |",
		"| Units | 10 | 10 | ns/op | — | FAIL — unit changed ns/op -> flips/s; refresh the baseline |",
		"| Steady | 1000 | 1200 | ns/op | +20.0% | ok |",
		"| New | — | 5 | ns/op | — | new (not gated yet) |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary table missing %q:\n%s", want, out)
		}
	}
	// Markdown and plain text must agree row for row.
	if rows := strings.Count(out, "\n| ") - 1; rows != 5 {
		t.Fatalf("summary has %d metric rows, want 5:\n%s", rows, out)
	}
}

func TestCompareZeroBaselineLowerIsBetter(t *testing.T) {
	base := map[string]Metric{"BenchmarkWireAppend": {Unit: "allocs_per_op", Value: 0, HigherIsBetter: false, Runs: 3}}
	good := map[string]Metric{"BenchmarkWireAppend": {Unit: "allocs_per_op", Value: 0, HigherIsBetter: false, Runs: 3}}
	bad := map[string]Metric{"BenchmarkWireAppend": {Unit: "allocs_per_op", Value: 1, HigherIsBetter: false, Runs: 3}}
	if n := Compare(io.Discard, base, good, 0.30); n != 0 {
		t.Fatalf("zero -> zero flagged as %d regression(s)", n)
	}
	if n := Compare(io.Discard, base, bad, 0.30); n != 1 {
		t.Fatalf("zero -> 1 alloc/op not flagged (got %d)", n)
	}
}
