// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on performance regressions against it.
//
// Two modes:
//
//	go test -run '^$' -bench 'E10|E11|DomainInterpolate' -benchtime 1x -count 3 ./... \
//	    | benchgate -write BENCH_PR.json
//	benchgate -baseline BENCH_BASELINE.json -against BENCH_PR.json -threshold 0.30
//
// For every benchmark, the gated metric is its headline: a reported custom
// metric when one exists (a "speedup" or rate unit — machine-independent,
// exactly what the experiment benchmarks report via b.ReportMetric),
// otherwise ns/op. Rates and speedups regress by dropping, ns/op by
// rising; with -count > 1 the best run is kept, damping scheduler noise.
// The compare mode exits nonzero iff any baseline benchmark regressed
// beyond the threshold or disappeared; -summary FILE additionally appends
// the full verdict table as markdown (pass $GITHUB_STEP_SUMMARY in CI).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metric is one benchmark's gated headline in the JSON files.
type Metric struct {
	// Unit is the metric's unit ("ns/op", "flips/s", a speedup label…).
	Unit string `json:"unit"`
	// Value is the best observation across -count runs.
	Value float64 `json:"value"`
	// HigherIsBetter fixes the regression direction for Unit.
	HigherIsBetter bool `json:"higher_is_better"`
	// Runs is how many observations Value was selected from.
	Runs int `json:"runs"`
}

func main() {
	write := flag.String("write", "", "parse `go test -bench` output from stdin and write the metrics JSON here")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	against := flag.String("against", "", "candidate metrics JSON (produced by -write)")
	threshold := flag.Float64("threshold", 0.30, "allowed relative regression (0.30 = 30%)")
	summary := flag.String("summary", "", "append a markdown verdict table for every gated metric to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	switch {
	case *write != "":
		metrics, err := Parse(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		if len(metrics) == 0 {
			log.Fatal("benchgate: no benchmark lines on stdin")
		}
		buf, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*write, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d benchmark metric(s) to %s\n", len(metrics), *write)
	case *baseline != "" && *against != "":
		base, err := load(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := load(*against)
		if err != nil {
			log.Fatal(err)
		}
		regressions := Compare(os.Stdout, base, cand, *threshold)
		if *summary != "" {
			f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			Summary(f, base, cand, *threshold)
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if regressions > 0 {
			log.Fatalf("benchgate: %d benchmark(s) regressed more than %.0f%%", regressions, *threshold*100)
		}
	default:
		log.Fatal("benchgate: need either -write FILE, or -baseline FILE -against FILE")
	}
}

func load(path string) (map[string]Metric, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Metric
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// standardUnits are go test's own per-op measurements; anything else on a
// benchmark line came from b.ReportMetric and is the headline.
var standardUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true}

// higherIsBetter classifies a unit's regression direction: rates,
// speedups and reduction factors drop when they regress, everything else
// (times, bytes, allocs) rises.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.Contains(unit, "speedup") ||
		strings.Contains(unit, "reduction")
}

// Parse extracts per-benchmark headline metrics from `go test -bench`
// output. Lines that are not benchmark results (package headers, PASS/ok,
// experiment tables) are ignored. The trailing -P GOMAXPROCS suffix is
// stripped from names so baselines transfer between machines.
func Parse(r io.Reader) (map[string]Metric, error) {
	type obs struct {
		unit   string
		values []float64
	}
	perBench := make(map[string]*obs)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count — not a result line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Value/unit pairs follow the iteration count; pick the headline:
		// the first custom metric if any, else ns/op.
		var nsPerOp float64
		var haveNs bool
		var custom string
		var customVal float64
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				nsPerOp, haveNs = v, true
			} else if !standardUnits[unit] && custom == "" {
				custom, customVal = unit, v
			}
		}
		unit, val := "ns/op", nsPerOp
		if custom != "" {
			unit, val = custom, customVal
		} else if !haveNs {
			continue
		}
		o := perBench[name]
		if o == nil {
			o = &obs{unit: unit}
			perBench[name] = o
		}
		if o.unit == unit {
			o.values = append(o.values, val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metric, len(perBench))
	for name, o := range perBench {
		m := Metric{Unit: o.unit, HigherIsBetter: higherIsBetter(o.unit), Runs: len(o.values)}
		m.Value = o.values[0]
		for _, v := range o.values[1:] {
			if (m.HigherIsBetter && v > m.Value) || (!m.HigherIsBetter && v < m.Value) {
				m.Value = v
			}
		}
		out[name] = m
	}
	return out, nil
}

// row is one benchmark's comparison verdict — the shared substance behind
// the plain-text gate output and the markdown job summary, so the two can
// never disagree.
type row struct {
	name string
	// verdict is "ok", "FAIL" or "new".
	verdict string
	// note explains FAIL rows that have no meaningful delta (a benchmark
	// missing from the candidate, a unit change).
	note       string
	base, cand Metric
	hasBase    bool
	hasCand    bool
	delta      float64
}

// compareRows evaluates every gated metric: baseline benchmarks in name
// order, then candidates absent from the baseline. A baseline benchmark
// that disappeared, or whose candidate metric moved in the bad direction
// by more than threshold, is a FAIL; new benchmarks only present in the
// candidate pass (they become gated once the baseline is refreshed).
func compareRows(base, cand map[string]Metric, threshold float64) []row {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]row, 0, len(base)+len(cand))
	for _, name := range names {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			rows = append(rows, row{name: name, verdict: "FAIL", note: "missing from candidate", base: b, hasBase: true})
			continue
		}
		if c.Unit != b.Unit {
			rows = append(rows, row{name: name, verdict: "FAIL",
				note: fmt.Sprintf("unit changed %s -> %s; refresh the baseline", b.Unit, c.Unit),
				base: b, cand: c, hasBase: true, hasCand: true})
			continue
		}
		delta := 0.0
		if b.Value != 0 {
			delta = (c.Value - b.Value) / b.Value
		}
		bad := delta < -threshold
		if !b.HigherIsBetter {
			bad = delta > threshold
			// A zero baseline means "this must stay at zero" (e.g. an
			// allocs-per-op metric): any positive candidate is a regression
			// the relative delta cannot express.
			if b.Value == 0 && c.Value > 0 {
				bad = true
			}
		}
		verdict := "ok"
		if bad {
			verdict = "FAIL"
		}
		rows = append(rows, row{name: name, verdict: verdict, base: b, cand: c,
			hasBase: true, hasCand: true, delta: delta})
	}
	extra := make([]string, 0, len(cand))
	for name := range cand {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, row{name: name, verdict: "new", cand: cand[name], hasCand: true})
	}
	return rows
}

// Compare prints a verdict table and returns the number of regressions
// (see compareRows for the gate semantics).
func Compare(w io.Writer, base, cand map[string]Metric, threshold float64) int {
	regressions := 0
	for _, r := range compareRows(base, cand, threshold) {
		switch {
		case r.verdict == "new":
			fmt.Fprintf(w, "new  %-40s %10.4g %s (not gated yet)\n", r.name, r.cand.Value, r.cand.Unit)
		case !r.hasCand:
			fmt.Fprintf(w, "FAIL %-40s missing from candidate (baseline %.4g %s)\n", r.name, r.base.Value, r.base.Unit)
			regressions++
		case r.note != "":
			fmt.Fprintf(w, "FAIL %-40s %s\n", r.name, r.note)
			regressions++
		default:
			verdict := "ok  "
			if r.verdict == "FAIL" {
				verdict = "FAIL"
				regressions++
			}
			fmt.Fprintf(w, "%s %-40s %10.4g -> %10.4g %-10s (%+.1f%%)\n", verdict, r.name, r.base.Value, r.cand.Value, r.base.Unit, r.delta*100)
		}
	}
	return regressions
}

// Summary writes the comparison as a markdown table covering every gated
// metric — the CI job-summary rendering of exactly the verdicts Compare
// prints.
func Summary(w io.Writer, base, cand map[string]Metric, threshold float64) {
	fmt.Fprintf(w, "## Benchmark gate (threshold %.0f%%)\n\n", threshold*100)
	fmt.Fprintln(w, "| benchmark | baseline | candidate | unit | delta | verdict |")
	fmt.Fprintln(w, "|---|---:|---:|---|---:|---|")
	for _, r := range compareRows(base, cand, threshold) {
		baseVal, candVal, unit, delta := "—", "—", "", "—"
		if r.hasBase {
			baseVal = fmt.Sprintf("%.4g", r.base.Value)
			unit = r.base.Unit
		}
		if r.hasCand {
			candVal = fmt.Sprintf("%.4g", r.cand.Value)
			if unit == "" {
				unit = r.cand.Unit
			}
		}
		verdict := r.verdict
		switch {
		case r.verdict == "new":
			verdict = "new (not gated yet)"
		case r.note != "":
			verdict = "FAIL — " + r.note
		case r.hasBase && r.hasCand:
			delta = fmt.Sprintf("%+.1f%%", r.delta*100)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n", r.name, baseVal, candVal, unit, delta, verdict)
	}
	fmt.Fprintln(w)
}
