package asyncft

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"asyncft/internal/acs"
	"asyncft/internal/adversary"
	"asyncft/internal/ba"
	"asyncft/internal/batch"
	"asyncft/internal/beacon"
	"asyncft/internal/core"
	"asyncft/internal/field"
	"asyncft/internal/network"
	"asyncft/internal/rbc"
	"asyncft/internal/reconfig"
	"asyncft/internal/runtime"
	"asyncft/internal/securesum"
	"asyncft/internal/shard"
	"asyncft/internal/statesync"
	"asyncft/internal/svss"
	"asyncft/internal/trace"
	"asyncft/internal/wire"
)

// Cluster is a set of parties wired over a simulated asynchronous network.
// Honest parties run the paper's protocols; corrupted parties (Config.
// Byzantine) run their assigned behaviors. All protocol methods block until
// every honest party finishes (or the cluster timeout fires) and verify
// that honest outputs agree — disagreement is reported as an error because
// it falsifies a protocol property, never swallowed.
type Cluster struct {
	cfg      Config
	router   *network.Router
	targeted *network.Targeted // non-nil iff SchedulingTargeted
	nodes    []*runtime.Node
	envs     []*runtime.Env
	ctx      context.Context
	cancel   context.CancelFunc
	core     core.Config
	rec      *trace.Recorder // nil unless Config.TraceCapacity > 0

	syncMu sync.Mutex
	// syncRuns maps an atomic-broadcast session to its per-party slot
	// stores; each honest party of such a run also serves snapshots for
	// the cluster's lifetime, which is what SyncFrom and Resume ride.
	syncRuns map[string]map[int]*acs.Store
	// reconfigSrcs maps a dynamic-membership session to its shared
	// operation source, the injection point for Cluster.Reconfigure.
	reconfigSrcs map[string]*reconfig.Source
	// shardRuns maps a sharded atomic-broadcast session to its per-party
	// serving engines, the injection point for Cluster.Submit.
	shardRuns map[string]map[int]*shard.Engine
}

// Party is the capability bundle handed to custom BehaviorFunc attacks.
type Party struct {
	// ID is the corrupted party's index; N and T the cluster parameters.
	ID, N, T int
	env      *runtime.Env
}

// Send emits a raw protocol message — Byzantine parties speak the wire
// format directly.
func (p *Party) Send(to int, session string, msgType uint8, payload []byte) {
	p.env.Send(to, session, msgType, payload)
}

// SendAll emits the message to every party.
func (p *Party) SendAll(session string, msgType uint8, payload []byte) {
	p.env.SendAll(session, msgType, payload)
}

type behaviorFunc struct {
	name string
	fn   func(ctx context.Context, p *Party) error
}

func (b behaviorFunc) Name() string { return b.name }
func (b behaviorFunc) Run(ctx context.Context, env *runtime.Env) error {
	return b.fn(ctx, &Party{ID: env.ID, N: env.N, T: env.T, env: env})
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	policy := cfg.policy()
	var ropts []network.Option
	c := &Cluster{cfg: cfg, core: cfg.coreConfig(),
		syncRuns:     make(map[string]map[int]*acs.Store),
		reconfigSrcs: make(map[string]*reconfig.Source),
		shardRuns:    make(map[string]map[int]*shard.Engine)}
	if cfg.TraceCapacity > 0 {
		c.rec = trace.New(cfg.TraceCapacity)
		ropts = append(ropts, network.WithObserver(func(stage string, env wire.Envelope) {
			c.rec.Recordf(env.From, env.Session, stage, "to=%d type=%d bytes=%d", env.To, env.Type, len(env.Payload))
		}))
	}
	c.router = network.NewRouter(cfg.N, policy, ropts...)
	if t, ok := policy.(*network.Targeted); ok {
		c.targeted = t
	}
	c.ctx, c.cancel = context.WithTimeout(context.Background(), cfg.Timeout)
	for i := 0; i < cfg.N; i++ {
		node := runtime.NewNode(i, cfg.N, cfg.T)
		c.nodes = append(c.nodes, node)
		c.router.Register(i, node.Dispatch)
		c.envs = append(c.envs, runtime.NewEnv(i, cfg.N, cfg.T, node, c.router, cfg.Seed*7919+int64(i)))
	}
	// Launch Byzantine behaviors for the lifetime of the cluster.
	for id, b := range cfg.Byzantine {
		id, inner := id, b.inner
		go func() { _ = inner.Run(c.ctx, c.envs[id]) }()
	}
	return c, nil
}

// Close shuts the cluster down and releases all goroutines.
func (c *Cluster) Close() {
	c.cancel()
	for _, nd := range c.nodes {
		nd.Close()
	}
	c.router.Close()
}

// Honest returns the indices of the honest (non-Byzantine) parties.
func (c *Cluster) Honest() []int {
	var ids []int
	for i := 0; i < c.cfg.N; i++ {
		if _, bad := c.cfg.Byzantine[i]; !bad {
			ids = append(ids, i)
		}
	}
	return ids
}

// Hold installs a targeted message hold (SchedulingTargeted only) matching
// messages from one party to another (-1 wildcards) whose session has the
// given prefix. It returns a handle for Lift.
func (c *Cluster) Hold(from, to int, sessionPrefix string) (int, error) {
	if c.targeted == nil {
		return 0, fmt.Errorf("asyncft: Hold requires SchedulingTargeted")
	}
	return c.targeted.Hold(network.Rule{From: from, To: to, SessionPrefix: sessionPrefix}), nil
}

// Lift removes a targeted hold.
func (c *Cluster) Lift(id int) error {
	if c.targeted == nil {
		return fmt.Errorf("asyncft: Lift requires SchedulingTargeted")
	}
	c.targeted.Lift(id)
	return nil
}

// Metrics returns a snapshot of network traffic counters.
func (c *Cluster) Metrics() MetricsSnapshot {
	m := c.router.Metrics()
	out := MetricsSnapshot{Messages: m.Messages, Bytes: m.Bytes}
	for _, p := range m.ByProto {
		out.ByProtocol = append(out.ByProtocol, ProtocolStat(p))
	}
	return out
}

// MetricsSnapshot summarizes network traffic.
type MetricsSnapshot struct {
	Messages   uint64
	Bytes      uint64
	ByProtocol []ProtocolStat
}

// ProtocolStat is the per-protocol traffic row.
type ProtocolStat struct {
	Proto    string
	Messages uint64
	Bytes    uint64
}

// TraceEvent is one recorded network event (see Config.TraceCapacity).
type TraceEvent struct {
	Seq     uint64
	Party   int
	Session string
	Kind    string
	Detail  string
}

// TraceEvents returns the retained trace, oldest first. Empty unless
// Config.TraceCapacity was set.
func (c *Cluster) TraceEvents() []TraceEvent {
	if c.rec == nil {
		return nil
	}
	evs := c.rec.Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{Seq: e.Seq, Party: e.Party, Session: e.Session, Kind: e.Kind, Detail: e.Detail}
	}
	return out
}

// DumpTrace writes the retained trace to w (no-op without TraceCapacity).
func (c *Cluster) DumpTrace(w io.Writer) {
	if c.rec != nil {
		c.rec.Dump(w)
	}
}

// ShunEvents returns the total number of shun events recorded by honest
// parties — the quantity the paper bounds by n².
func (c *Cluster) ShunEvents() int {
	total := 0
	for _, id := range c.Honest() {
		total += c.nodes[id].ShunCount()
	}
	return total
}

// run executes fn at every honest party concurrently.
func (c *Cluster) run(fn func(ctx context.Context, env *runtime.Env) (interface{}, error)) map[int]result {
	honest := c.Honest()
	ch := make(chan result, len(honest))
	for _, id := range honest {
		id := id
		go func() {
			v, err := fn(c.ctx, c.envs[id])
			ch <- result{id: id, value: v, err: err}
		}()
	}
	out := make(map[int]result, len(honest))
	for range honest {
		r := <-ch
		out[r.id] = r
	}
	return out
}

type result struct {
	id    int
	value interface{}
	err   error
}

// runSpec executes one BatchSpec sequentially across all honest parties —
// the single source of truth shared by the sequential protocol methods and
// RunBatch, so batched and sequential instances are indistinguishable on
// the wire by construction.
func (c *Cluster) runSpec(spec BatchSpec) (interface{}, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return spec.run(c, ctx, env)
	})
	return spec.agree(res)
}

// CoinFlip runs the strong common coin (Algorithm 1) across all honest
// parties and returns the agreed bit.
func (c *Cluster) CoinFlip(session string) (byte, error) {
	v, err := c.runSpec(CoinFlipSpec(session))
	if err != nil {
		return 0, err
	}
	return v.(byte), nil
}

// FairChoice runs Algorithm 2 across all honest parties: agreement on one
// of {0, …, m−1}, almost fairly. m must be at least 3.
func (c *Cluster) FairChoice(session string, m int) (int, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return core.FairChoice(ctx, c.ctx, env, "fc/"+session, m, c.core)
	})
	return agreeVal[int](res)
}

// FairBA runs fair Byzantine agreement (Algorithm 3). inputs maps party →
// input value; missing honest parties default to nil inputs. It returns the
// common output.
func (c *Cluster) FairBA(session string, inputs map[int][]byte) ([]byte, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return core.FBA(ctx, c.ctx, env, "fba/"+session, inputs[env.ID], c.core)
	})
	return agreeBytes(res)
}

// BinaryAgreement runs one almost-surely terminating binary BA instance
// (Definition 3.3) with the configured coin. inputs maps party → bit;
// missing honest parties default to 0.
func (c *Cluster) BinaryAgreement(session string, inputs map[int]byte) (byte, error) {
	v, err := c.runSpec(BinaryAgreementSpec(session, inputs))
	if err != nil {
		return 0, err
	}
	return v.(byte), nil
}

// ReliableBroadcast runs one A-Cast from sender with the given value and
// returns the commonly delivered value. Values of at least
// rbc.DefaultCodedThreshold bytes are dispersed erasure-coded (fragments +
// digest instead of full-value echoes); the delivered bytes are identical
// either way.
func (c *Cluster) ReliableBroadcast(session string, sender int, value []byte) ([]byte, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		var in []byte
		if env.ID == sender {
			in = value
		}
		return rbc.RunCoded(ctx, env, "rbc/"+session, sender, in, rbc.Options{})
	})
	return agreeBytes(res)
}

// ShareAndReconstruct shares secret from dealer via SVSS and immediately
// reconstructs it, returning the commonly reconstructed value. It validates
// the full share→reconstruct pipeline, including binding-or-shun behavior
// under the configured adversary.
func (c *Cluster) ShareAndReconstruct(session string, dealer int, secret uint64) (uint64, error) {
	v, err := c.runSpec(ShareAndReconstructSpec(session, dealer, secret))
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// BatchSpec describes one protocol instance for RunBatch. Construct specs
// with CoinFlipSpec, BinaryAgreementSpec, or ShareAndReconstructSpec; each
// instance uses the same session namespace as the corresponding standalone
// Cluster method, so a batched coin flip is indistinguishable on the wire
// from a sequential one.
type BatchSpec struct {
	session string
	run     func(c *Cluster, ctx context.Context, env *runtime.Env) (interface{}, error)
	agree   func(res map[int]result) (interface{}, error)
}

// CoinFlipSpec is a strong-common-coin instance (see Cluster.CoinFlip).
// The batched result value is the agreed byte.
func CoinFlipSpec(session string) BatchSpec {
	sess := "cf/" + session
	return BatchSpec{
		session: sess,
		run: func(c *Cluster, ctx context.Context, env *runtime.Env) (interface{}, error) {
			return core.CoinFlip(ctx, c.ctx, env, sess, c.core)
		},
		agree: func(res map[int]result) (interface{}, error) { return agreeByte(res) },
	}
}

// BinaryAgreementSpec is a binary-BA instance (see Cluster.BinaryAgreement).
// The batched result value is the agreed bit as a byte.
func BinaryAgreementSpec(session string, inputs map[int]byte) BatchSpec {
	sess := "ba/" + session
	return BatchSpec{
		session: sess,
		run: func(c *Cluster, ctx context.Context, env *runtime.Env) (interface{}, error) {
			coin := c.core.InnerCoinFor(c.ctx, env, sess)
			return ba.Run(ctx, env, sess, inputs[env.ID], coin, c.core.BA)
		},
		agree: func(res map[int]result) (interface{}, error) { return agreeByte(res) },
	}
}

// ShareAndReconstructSpec is an SVSS share-then-reconstruct instance (see
// Cluster.ShareAndReconstruct). The batched result value is the commonly
// reconstructed uint64.
func ShareAndReconstructSpec(session string, dealer int, secret uint64) BatchSpec {
	sess := "svss/" + session
	return BatchSpec{
		session: sess,
		run: func(c *Cluster, ctx context.Context, env *runtime.Env) (interface{}, error) {
			sh, err := svss.RunShare(ctx, env, sess, dealer, field.New(secret))
			if err != nil {
				return nil, err
			}
			v, err := svss.RunRec(ctx, env, sh, c.core.SVSS)
			if err != nil {
				return nil, err
			}
			return v.Uint64(), nil
		},
		agree: func(res map[int]result) (interface{}, error) { return agreeVal[uint64](res) },
	}
}

// BatchResult is the agreed output of one RunBatch instance.
type BatchResult struct {
	// Session is the instance's fully qualified session ID.
	Session string
	// Value is the agreed output; its type depends on the spec constructor
	// (byte for coins and BAs, uint64 for SVSS reconstructions).
	Value interface{}
}

// RunBatch executes all specs as concurrent protocol instances multiplexed
// over the cluster's single network by session namespacing, keeping every
// party's pipeline full instead of paying per-instance cluster setup and
// full protocol latency K times. width bounds how many instances are in
// flight per party (0 = the whole batch); every party admits instances in
// spec order, so any width is deadlock-free.
//
// Results are returned in spec order. Agreement is verified per instance
// exactly as the corresponding sequential Cluster method does; the first
// violated instance aborts with an error naming its session.
func (c *Cluster) RunBatch(width int, specs ...BatchSpec) ([]BatchResult, error) {
	instances := make([]batch.Instance, len(specs))
	for i, s := range specs {
		s := s
		instances[i] = batch.Instance{
			Session: s.session,
			Run: func(ctx context.Context, env *runtime.Env) (interface{}, error) {
				return s.run(c, ctx, env)
			},
		}
	}
	envs := make(map[int]*runtime.Env)
	for _, id := range c.Honest() {
		envs[id] = c.envs[id]
	}
	res, err := batch.Run(c.ctx, envs, instances, batch.Options{Width: width})
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(specs))
	for i, s := range specs {
		m := make(map[int]result, len(res[i]))
		for id, r := range res[i] {
			m[id] = result{id: id, value: r.Value, err: r.Err}
		}
		v, err := s.agree(m)
		if err != nil {
			return nil, fmt.Errorf("batch instance %s: %w", s.session, err)
		}
		out[i] = BatchResult{Session: s.session, Value: v}
	}
	return out, nil
}

// MaxLedgerPayloadSize bounds one party's per-slot batch in
// RunAtomicBroadcast (the A-Cast value cap).
const MaxLedgerPayloadSize = acs.MaxPayloadSize

// LedgerEntry is one committed payload of an atomic-broadcast ledger.
type LedgerEntry struct {
	// Shard is the ledger shard that committed the payload; always 0
	// unless the run was sharded (AtomicBroadcastSpec.Shards ≥ 1).
	Shard int
	// Slot is the slot that committed the payload. Party is the payload's
	// first committer — not a verified author: a Byzantine party can copy
	// another party's batch into its own A-Cast, and cross-slot content
	// deduplication then credits whichever committed first.
	Slot, Party int
	// Payload is the committed batch, byte-identical at every party.
	Payload []byte
}

// AtomicBroadcastSpec configures one RunAtomicBroadcast session.
type AtomicBroadcastSpec struct {
	// Session namespaces the run, exactly like the other protocol methods.
	Session string
	// Slots is the number of atomic-broadcast slots to run (≥ 1). Each
	// slot commits ≥ N−T parties' batches via CommonSubset over A-Casts.
	Slots int
	// Width bounds how many slots are in flight per party (0 = all): the
	// pipeline depth, trading memory for throughput. Width 1 degrades to
	// slot-at-a-time execution — the baseline experiment E11 beats.
	Width int
	// Payloads yields the batch a party contributes in a slot; nil (the
	// function or its result) means the party participates in agreement
	// without contributing. Batches are capped at MaxLedgerPayloadSize.
	// The function is called concurrently — from every party's goroutine,
	// and for multiple slots at once when pipelined — so it must be safe
	// for concurrent use.
	Payloads func(party, slot int) []byte
	// NoCodedBroadcast forces every slot A-Cast onto classic full-value
	// echo, disabling the erasure-coded dispersal fast path that batches
	// at or above rbc.DefaultCodedThreshold bytes otherwise use. The two
	// paths produce bit-identical ledgers; this toggle exists for
	// cross-checks and bandwidth comparisons (experiment E12).
	NoCodedBroadcast bool
	// Resume marks parties as restarted replicas: a party mapped to slot
	// R > 0 skips slots [0, R) entirely — it catches the missed prefix up
	// via digest-verified state transfer (internal/statesync) from its
	// peers, concurrently with participating live in slots [R, Slots).
	// Every honest party of the run serves snapshots for the cluster's
	// lifetime, so catch-up overlaps live commits by construction. At
	// most T parties may resume (the slots they skip still need N−T live
	// participants), and R must lie in [1, Slots−1]. The run's final
	// agreement check covers resumed parties: their spliced ledgers must
	// be bit-identical to everyone else's.
	Resume map[int]int
	// DynamicMembership, when non-nil, runs the session under epoch-based
	// reconfiguration: the member set starts at its Genesis subset and
	// evolves via membership operations committed on the ledger itself.
	// See the DynamicMembership type; incompatible with Resume.
	DynamicMembership *DynamicMembership
	// Shards, when ≥ 1, scales the session out horizontally: Shards
	// independent ledger shards (each its own slot pipeline, fast path and
	// BCA enabled) run over the shared transport, multiplexed by session
	// namespacing (internal/shard). A sharded run is fed exclusively
	// through Cluster.Submit — client operations route to a shard by a
	// deterministic hash of their stream id, are batched into that shard's
	// next slot, and are acknowledged with their committed (shard, slot,
	// index) position. The returned ledger carries every shard's entries
	// tagged with their Shard. Incompatible with Payloads, Resume, and
	// DynamicMembership.
	Shards int
	// QueueCap bounds each party's per-shard admission queue in a sharded
	// run (0 = the internal default). Once a queue is full, Submit rejects
	// with ErrOverloaded — backpressure, never a silent drop.
	QueueCap int
}

// ErrOverloaded is returned by Submit when the target shard's admission
// queue at the chosen party is full. It is the backpressure signal a
// serving front door translates to HTTP 429.
var ErrOverloaded = shard.ErrOverloaded

// ErrUncommitted is returned by Submit for an op that was admitted but
// missed every remaining slot of a finite run — reported, never silently
// dropped; the client may resubmit on a later session.
var ErrUncommitted = shard.ErrUncommitted

// SubmitPos is the committed position a Submit acknowledgment names:
// the shard, the slot within that shard, and the index within the slot's
// flattened client-op list. Positions are identical at every party.
type SubmitPos struct {
	Shard, Slot, Index int
}

// RunAtomicBroadcast runs ACS-based asynchronous atomic broadcast
// (internal/acs): per slot, every party A-Casts its batch, CommonSubset
// picks an agreed contributor set of ≥ N−T parties, and the agreed batches
// are appended in party order; slots pipeline Width-wide over the batch
// engine. It returns the replicated ledger — slot outputs in slot order,
// deduplicated across slots by payload — after verifying every honest
// party derived the byte-identical log (a violation is an error, never
// swallowed, like every other agreement check on Cluster).
func (c *Cluster) RunAtomicBroadcast(spec AtomicBroadcastSpec) ([]LedgerEntry, error) {
	if spec.Slots < 1 {
		return nil, fmt.Errorf("asyncft: RunAtomicBroadcast needs Slots ≥ 1, got %d", spec.Slots)
	}
	if spec.Shards > 0 {
		return c.runShardedBroadcast(spec)
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("asyncft: Shards must be ≥ 0, got %d", spec.Shards)
	}
	if spec.QueueCap != 0 {
		return nil, fmt.Errorf("asyncft: QueueCap requires Shards")
	}
	if spec.DynamicMembership != nil {
		return c.runDynamicMembership(spec)
	}
	// A resumed party is absent from the slots it skips, so resumptions
	// and corruptions draw on the same fault budget. A Byzantine party
	// cannot resume (it runs its behavior, not the protocol), so naming
	// one in Resume is a spec error, never a silent no-op.
	if len(spec.Resume)+len(c.cfg.Byzantine) > c.cfg.T {
		return nil, fmt.Errorf("asyncft: %d resuming + %d Byzantine parties exceed T=%d",
			len(spec.Resume), len(c.cfg.Byzantine), c.cfg.T)
	}
	for id, r := range spec.Resume {
		if id < 0 || id >= c.cfg.N || r < 1 || r >= spec.Slots {
			return nil, fmt.Errorf("asyncft: Resume[%d]=%d out of range (want 1 ≤ R < Slots)", id, r)
		}
		if _, bad := c.cfg.Byzantine[id]; bad {
			return nil, fmt.Errorf("asyncft: Resume[%d] names a Byzantine party", id)
		}
	}
	sess := "abc/" + spec.Session
	cfg := c.core
	if spec.NoCodedBroadcast {
		cfg.RBC.CodedThreshold = -1
	}
	stores, fresh := c.registerSyncRun(sess)
	syncOpts := c.cfg.syncOptions()
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		var input func(int) []byte
		if spec.Payloads != nil {
			id := env.ID
			input = func(slot int) []byte { return spec.Payloads(id, slot) }
		}
		store := stores[env.ID]
		if fresh {
			// Serve snapshots for the cluster's lifetime: lagging and
			// resumed peers pull verified chunks while live slots keep
			// committing. One server set per session, ever.
			go statesync.Serve(c.ctx, env, sess, store, syncOpts)
		}
		from := spec.Resume[env.ID]
		if from > 0 {
			// A restarted replica: live participation in [from, Slots) and
			// catch-up of [0, from) run concurrently.
			if err := statesync.Resume(ctx, c.ctx, env, sess, store, from, spec.Slots, spec.Width, input, cfg, syncOpts); err != nil {
				return nil, err
			}
		} else if err := acs.RunFrom(ctx, c.ctx, env, sess, 0, spec.Slots, spec.Width, input, cfg, store); err != nil {
			return nil, err
		}
		return store.Ledger(), nil
	})
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ledgers := make(map[int][]acs.Entry, len(res))
	for _, id := range ids {
		r := res[id]
		if r.err != nil {
			return nil, fmt.Errorf("party %d: %w", id, r.err)
		}
		ledgers[id] = r.value.([]acs.Entry)
	}
	ref, err := acs.AgreeLedgers(ledgers)
	if err != nil {
		return nil, fmt.Errorf("atomic broadcast %s: %w", sess, err)
	}
	out := make([]LedgerEntry, len(ref))
	for i, e := range ref {
		// Copy the payloads: the ledger aliases a store the snapshot
		// servers keep serving for the cluster's lifetime, and a caller
		// mutating its result must not corrupt what peers sync.
		out[i] = LedgerEntry{Slot: e.Slot, Party: e.Party, Payload: append([]byte(nil), e.Payload...)}
	}
	return out, nil
}

// registerSyncRun creates (once per session) the per-party slot stores
// behind an atomic-broadcast run and reports whether this call created
// them — the caller starts the one snapshot server set per party iff so.
func (c *Cluster) registerSyncRun(sess string) (map[int]*acs.Store, bool) {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if stores, ok := c.syncRuns[sess]; ok {
		return stores, false
	}
	stores := make(map[int]*acs.Store)
	for _, id := range c.Honest() {
		stores[id] = acs.NewStore()
	}
	c.syncRuns[sess] = stores
	return stores, true
}

// runShardedBroadcast is the Shards ≥ 1 arm of RunAtomicBroadcast: one
// serving engine per honest party, each running Shards independent slot
// pipelines over the shared transport, fed through Cluster.Submit. After
// every engine finishes, each shard's committed slot range must be
// bit-identical across the honest parties — the per-shard form of the
// agreement check every other Cluster method performs.
func (c *Cluster) runShardedBroadcast(spec AtomicBroadcastSpec) ([]LedgerEntry, error) {
	switch {
	case spec.Payloads != nil:
		return nil, fmt.Errorf("asyncft: Shards is incompatible with Payloads (submit through Cluster.Submit)")
	case len(spec.Resume) > 0:
		return nil, fmt.Errorf("asyncft: Shards is incompatible with Resume")
	case spec.DynamicMembership != nil:
		return nil, fmt.Errorf("asyncft: Shards is incompatible with DynamicMembership")
	}
	sess := "abc/" + spec.Session
	cfg := c.core
	if spec.NoCodedBroadcast {
		cfg.RBC.CodedThreshold = -1
	}
	engines, err := c.registerShardRun(sess, spec, cfg)
	if err != nil {
		return nil, err
	}
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return nil, engines[env.ID].Run(ctx, c.ctx)
	})
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if res[id].err != nil {
			return nil, fmt.Errorf("party %d: %w", id, res[id].err)
		}
	}
	// Per-shard agreement: every committed slot of every shard must be
	// byte-identical across the honest parties (stronger than comparing
	// deduplicated ledgers — ack positions hang off slots).
	var out []LedgerEntry
	for s := 0; s < spec.Shards; s++ {
		var ref []byte
		refParty := -1
		for _, id := range ids {
			st := engines[id].Store(s)
			enc, _ := st.EncodeRange(0, st.Next())
			if refParty < 0 {
				ref, refParty = enc, id
			} else if !bytes.Equal(ref, enc) {
				return nil, fmt.Errorf("sharded broadcast %s: shard %d ledger at party %d differs from party %d",
					sess, s, id, refParty)
			}
		}
		for _, e := range engines[ids[0]].Ledger(s) {
			out = append(out, LedgerEntry{Shard: s, Slot: e.Slot, Party: e.Party,
				Payload: append([]byte(nil), e.Payload...)})
		}
	}
	return out, nil
}

// registerShardRun creates (once per session) the per-party serving
// engines behind a sharded run, making them visible to Submit before any
// slot starts. Re-running a session is a spec error, not a silent reuse.
func (c *Cluster) registerShardRun(sess string, spec AtomicBroadcastSpec, cfg core.Config) (map[int]*shard.Engine, error) {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if _, ok := c.shardRuns[sess]; ok {
		return nil, fmt.Errorf("asyncft: sharded session %q already ran", sess)
	}
	engines := make(map[int]*shard.Engine)
	for _, id := range c.Honest() {
		eng, err := shard.New(c.envs[id], shard.Options{
			Session:  sess,
			Shards:   spec.Shards,
			Slots:    spec.Slots,
			Width:    spec.Width,
			QueueCap: spec.QueueCap,
			Core:     cfg,
		})
		if err != nil {
			return nil, err
		}
		engines[id] = eng
	}
	c.shardRuns[sess] = engines
	return engines, nil
}

// Submit routes one client operation into a sharded atomic-broadcast run
// (AtomicBroadcastSpec.Shards ≥ 1) through the front door at party. The
// stream id fixes the shard (the same stream always lands on the same
// shard, at every party); the call blocks until the op commits and
// returns its position, identical at every honest party. ErrOverloaded
// reports a full admission queue — retry against backpressure, nothing
// was enqueued. Submit may be called as soon as RunAtomicBroadcast has
// been started (typically from another goroutine, since that call blocks
// until the run completes); it waits for the session's engines to appear.
func (c *Cluster) Submit(session string, party int, stream, payload []byte) (SubmitPos, error) {
	if party < 0 || party >= c.cfg.N {
		return SubmitPos{}, fmt.Errorf("asyncft: Submit party %d out of range", party)
	}
	if _, bad := c.cfg.Byzantine[party]; bad {
		return SubmitPos{}, fmt.Errorf("asyncft: Submit party %d is Byzantine", party)
	}
	sess := "abc/" + session
	var eng *shard.Engine
	for eng == nil {
		c.syncMu.Lock()
		if m, ok := c.shardRuns[sess]; ok {
			eng = m[party]
		}
		c.syncMu.Unlock()
		if eng != nil {
			break
		}
		select {
		case <-c.ctx.Done():
			return SubmitPos{}, fmt.Errorf("asyncft: Submit: no sharded run with session %q", session)
		case <-time.After(time.Millisecond):
		}
	}
	pos, err := eng.Submit(c.ctx, stream, payload)
	if err != nil {
		return SubmitPos{}, err
	}
	return SubmitPos(pos), nil
}

// SyncFrom runs a state-transfer client at party against the snapshot
// servers of the RunAtomicBroadcast session, fetching slots [lo, hi) and
// verifying them against the t+1-agreed head and digest chain before
// returning them (in slot order, pre-deduplication). It blocks until the
// honest servers have committed slot hi — so it may be called while the
// run is still in flight — and inherits statesync's Byzantine guarantees:
// lying servers cause at most a rejected response and a retry against
// another peer.
func (c *Cluster) SyncFrom(session string, party, lo, hi int) ([]LedgerEntry, error) {
	if party < 0 || party >= c.cfg.N {
		return nil, fmt.Errorf("asyncft: SyncFrom party %d out of range", party)
	}
	if _, bad := c.cfg.Byzantine[party]; bad {
		return nil, fmt.Errorf("asyncft: SyncFrom party %d is Byzantine", party)
	}
	sess := "abc/" + session
	c.syncMu.Lock()
	_, known := c.syncRuns[sess]
	c.syncMu.Unlock()
	if !known {
		return nil, fmt.Errorf("asyncft: SyncFrom: no atomic-broadcast run with session %q", session)
	}
	slots, err := statesync.Fetch(c.ctx, c.envs[party], sess, lo, hi, nil, c.cfg.syncOptions())
	if err != nil {
		return nil, err
	}
	var out []LedgerEntry
	for _, entries := range slots {
		for _, e := range entries {
			out = append(out, LedgerEntry{Slot: e.Slot, Party: e.Party, Payload: e.Payload})
		}
	}
	return out, nil
}

// PartyIDs returns 0..N-1, a convenience for building input maps.
func (c *Cluster) PartyIDs() []int {
	ids := make([]int, c.cfg.N)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// agreeVal asserts all parties succeeded with the same value of type T and
// returns it. Parties are checked in ID order so a violation always blames
// the same party deterministically.
func agreeVal[T comparable](res map[int]result) (T, error) {
	var ref, zero T
	first := true
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := res[id]
		if r.err != nil {
			return zero, fmt.Errorf("party %d: %w", id, r.err)
		}
		v := r.value.(T)
		if first {
			ref, first = v, false
		} else if ref != v {
			return zero, fmt.Errorf("agreement violated: party %d output %v, expected %v", id, v, ref)
		}
	}
	return ref, nil
}

func agreeByte(res map[int]result) (byte, error) { return agreeVal[byte](res) }

func agreeBytes(res map[int]result) ([]byte, error) {
	var ref []byte
	first := true
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := res[id]
		if r.err != nil {
			return nil, fmt.Errorf("party %d: %w", id, r.err)
		}
		v := r.value.([]byte)
		if first {
			ref, first = v, false
		} else if string(ref) != string(v) {
			return nil, fmt.Errorf("agreement violated: party %d output %q, expected %q", id, v, ref)
		}
	}
	return ref, nil
}

var _ adversary.Behavior = behaviorFunc{}

// SecureSum runs asynchronous secure aggregation (internal/securesum):
// every honest party contributes its private input from the map, and the
// cluster returns the agreed sum over the agreed core set of contributors
// — without any individual honest input ever being opened.
func (c *Cluster) SecureSum(session string, inputs map[int]uint64) (uint64, []int, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		return securesum.Run(ctx, c.ctx, env, "ss/"+session, field.New(inputs[env.ID]), c.core)
	})
	var ref *securesum.Result
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := res[id]
		if r.err != nil {
			return 0, nil, fmt.Errorf("party %d: %w", id, r.err)
		}
		got := r.value.(*securesum.Result)
		if ref == nil {
			ref = got
			continue
		}
		if ref.Sum != got.Sum || len(ref.Contributors) != len(got.Contributors) {
			return 0, nil, fmt.Errorf("agreement violated: party %d sum %v set %v, expected %v %v",
				id, got.Sum, got.Contributors, ref.Sum, ref.Contributors)
		}
	}
	return ref.Sum.Uint64(), ref.Contributors, nil
}

// RandomInt draws an agreed random value in [0, m) from a beacon built on
// the strong common coin (rejection-sampled, so the only bias is the
// per-bit ε).
func (c *Cluster) RandomInt(session string, m int) (int, error) {
	res := c.run(func(ctx context.Context, env *runtime.Env) (interface{}, error) {
		b := beacon.New(c.ctx, env, "bc/"+session, c.core)
		return b.Intn(ctx, m)
	})
	var ref int
	first := true
	ids := make([]int, 0, len(res))
	for id := range res {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := res[id]
		if r.err != nil {
			return 0, fmt.Errorf("party %d: %w", id, r.err)
		}
		v := r.value.(int)
		if first {
			ref, first = v, false
		} else if v != ref {
			return 0, fmt.Errorf("agreement violated: %d vs %d", v, ref)
		}
	}
	return ref, nil
}
